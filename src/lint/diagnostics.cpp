#include "lint/diagnostics.h"

#include <algorithm>

namespace stcg::lint {

const char* severityName(Severity s) {
  switch (s) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

void DiagnosticSink::report(Severity severity, std::string check,
                            std::string location, std::string message) {
  switch (severity) {
    case Severity::kNote: ++notes_; break;
    case Severity::kWarning: ++warnings_; break;
    case Severity::kError: ++errors_; break;
  }
  diags_.push_back(Diagnostic{severity, std::move(check), std::move(location),
                              std::move(message)});
}

int DiagnosticSink::countFor(const std::string& check) const {
  int n = 0;
  for (const auto& d : diags_) n += d.check == check ? 1 : 0;
  return n;
}

void DiagnosticSink::sortBySeverity() {
  std::stable_sort(diags_.begin(), diags_.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     return static_cast<int>(a.severity) >
                            static_cast<int>(b.severity);
                   });
}

std::string DiagnosticSink::render() const {
  std::string out;
  for (const auto& d : diags_) {
    out += std::string(severityName(d.severity)) + " [" + d.check + "] " +
           d.location + ": " + d.message + "\n";
  }
  out += std::to_string(errors_) + " error(s), " +
         std::to_string(warnings_) + " warning(s), " +
         std::to_string(notes_) + " note(s)\n";
  return out;
}

namespace {

/// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string DiagnosticSink::renderJson(const std::string& modelName) const {
  std::string out = "{\n  \"model\": \"" + jsonEscape(modelName) + "\",\n";
  out += "  \"errors\": " + std::to_string(errors_) + ",\n";
  out += "  \"warnings\": " + std::to_string(warnings_) + ",\n";
  out += "  \"notes\": " + std::to_string(notes_) + ",\n";
  out += "  \"diagnostics\": [";
  for (std::size_t i = 0; i < diags_.size(); ++i) {
    const auto& d = diags_[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"severity\": \"" + std::string(severityName(d.severity)) +
           "\", \"check\": \"" + jsonEscape(d.check) +
           "\", \"location\": \"" + jsonEscape(d.location) +
           "\", \"message\": \"" + jsonEscape(d.message) + "\"}";
  }
  out += diags_.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

}  // namespace stcg::lint
