#include "analysis/interval_eval.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace stcg::analysis {

using expr::Expr;
using expr::ExprPtr;
using expr::Op;
using expr::Type;
using interval::Interval;

void IntervalEnv::set(expr::VarId id, Interval iv) { scalars_[id] = iv; }

void IntervalEnv::setArray(expr::VarId id, std::vector<Interval> elems) {
  arrays_[id] = std::move(elems);
}

bool IntervalEnv::has(expr::VarId id) const { return scalars_.count(id) > 0; }

bool IntervalEnv::hasArray(expr::VarId id) const {
  return arrays_.count(id) > 0;
}

const Interval& IntervalEnv::get(expr::VarId id) const {
  return scalars_.at(id);
}

const std::vector<Interval>& IntervalEnv::getArray(expr::VarId id) const {
  return arrays_.at(id);
}

Interval IntervalEvaluator::evalScalar(const ExprPtr& e) {
  assert(!e->isArray());
  if (pinnedSet_.insert(e.get()).second) pinnedRoots_.push_back(e);
  return scalarRec(e.get());
}

std::vector<Interval> IntervalEvaluator::evalArray(const ExprPtr& e) {
  assert(e->isArray());
  if (pinnedSet_.insert(e.get()).second) pinnedRoots_.push_back(e);
  return arrayRec(e.get());
}

Interval IntervalEvaluator::scalarRec(const Expr* e) {
  if (auto it = memo_.find(e); it != memo_.end()) return it->second;
  Interval out;
  switch (e->op) {
    case Op::kConst:
      out = Interval::point(e->constVal.toReal());
      break;
    case Op::kVar:
      if (env_->has(e->var)) {
        out = env_->get(e->var);
      } else {
        out = Interval(e->varLo, e->varHi);
        if (e->type != Type::kReal) out = out.integralHull();
      }
      break;
    case Op::kNot:
      out = notI(scalarRec(e->args[0].get()));
      break;
    case Op::kNeg:
      out = negI(scalarRec(e->args[0].get()));
      break;
    case Op::kAbs:
      out = absI(scalarRec(e->args[0].get()));
      break;
    case Op::kCast: {
      const Interval a = scalarRec(e->args[0].get());
      if (e->type == Type::kBool) {
        if (a.isEmpty()) {
          out = a;
        } else if (a.isPoint()) {
          out = a.lo() == 0.0 ? Interval::boolFalse() : Interval::boolTrue();
        } else {
          out = a.containsZero() ? Interval::boolUnknown()
                                 : Interval::boolTrue();
        }
      } else if (e->type == Type::kInt) {
        out = a.isEmpty()
                  ? a
                  : Interval(std::trunc(a.lo()), std::trunc(a.hi()));
      } else {
        out = a;
      }
      break;
    }
    case Op::kAdd:
      out = addI(scalarRec(e->args[0].get()), scalarRec(e->args[1].get()));
      break;
    case Op::kSub:
      out = subI(scalarRec(e->args[0].get()), scalarRec(e->args[1].get()));
      break;
    case Op::kMul:
      out = mulI(scalarRec(e->args[0].get()), scalarRec(e->args[1].get()));
      break;
    case Op::kDiv:
      out = divI(scalarRec(e->args[0].get()), scalarRec(e->args[1].get()));
      // Integer division truncates toward zero; the real-quotient interval
      // does not contain the truncated values (1/4 is 0, not 0.25), so map
      // the endpoints through trunc (monotone, hence sound).
      if (e->type == Type::kInt && !out.isEmpty()) {
        out = Interval(std::trunc(out.lo()), std::trunc(out.hi()));
      }
      break;
    case Op::kMod:
      out = modI(scalarRec(e->args[0].get()), scalarRec(e->args[1].get()));
      break;
    case Op::kMin:
      out = minI(scalarRec(e->args[0].get()), scalarRec(e->args[1].get()));
      break;
    case Op::kMax:
      out = maxI(scalarRec(e->args[0].get()), scalarRec(e->args[1].get()));
      break;
    case Op::kLt:
      out = ltI(scalarRec(e->args[0].get()), scalarRec(e->args[1].get()));
      break;
    case Op::kLe:
      out = leI(scalarRec(e->args[0].get()), scalarRec(e->args[1].get()));
      break;
    case Op::kGt:
      out = ltI(scalarRec(e->args[1].get()), scalarRec(e->args[0].get()));
      break;
    case Op::kGe:
      out = leI(scalarRec(e->args[1].get()), scalarRec(e->args[0].get()));
      break;
    case Op::kEq:
      out = eqI(scalarRec(e->args[0].get()), scalarRec(e->args[1].get()));
      break;
    case Op::kNe:
      out = notI(
          eqI(scalarRec(e->args[0].get()), scalarRec(e->args[1].get())));
      break;
    case Op::kAnd:
      out = andI(scalarRec(e->args[0].get()), scalarRec(e->args[1].get()));
      break;
    case Op::kOr:
      out = orI(scalarRec(e->args[0].get()), scalarRec(e->args[1].get()));
      break;
    case Op::kXor:
      out = xorI(scalarRec(e->args[0].get()), scalarRec(e->args[1].get()));
      break;
    case Op::kIte: {
      const Interval c = scalarRec(e->args[0].get());
      if (c.isTrue()) {
        out = scalarRec(e->args[1].get());
      } else if (c.isFalse()) {
        out = scalarRec(e->args[2].get());
      } else {
        out = scalarRec(e->args[1].get())
                  .hull(scalarRec(e->args[2].get()));
      }
      break;
    }
    case Op::kSelect: {
      const auto arr = arrayRec(e->args[0].get());
      Interval idx = scalarRec(e->args[1].get()).integralHull();
      const auto n = static_cast<std::int64_t>(arr.size());
      Interval acc = Interval::empty();
      if (!idx.isEmpty() && n > 0) {
        // Concrete semantics clamp out-of-range indices to the ends.
        const auto lo = static_cast<std::int64_t>(
            std::clamp(idx.lo(), 0.0, static_cast<double>(n - 1)));
        const auto hi = static_cast<std::int64_t>(
            std::clamp(idx.hi(), 0.0, static_cast<double>(n - 1)));
        for (std::int64_t i = lo; i <= hi; ++i) {
          acc = acc.hull(arr[static_cast<std::size_t>(i)]);
        }
      }
      out = acc;
      break;
    }
    default:
      assert(false && "array node in scalar interval eval");
      out = Interval::whole();
      break;
  }
  memo_.emplace(e, out);
  return out;
}

std::vector<Interval> IntervalEvaluator::arrayRec(const Expr* e) {
  if (auto it = arrayMemo_.find(e); it != arrayMemo_.end()) return it->second;
  std::vector<Interval> out;
  switch (e->op) {
    case Op::kConstArray:
      out.reserve(e->constArray.size());
      for (const auto& s : e->constArray) {
        out.push_back(Interval::point(s.toReal()));
      }
      break;
    case Op::kVarArray:
      if (env_->hasArray(e->var)) {
        out = env_->getArray(e->var);
      } else {
        out.assign(static_cast<std::size_t>(e->arraySize),
                   Interval::whole());
      }
      break;
    case Op::kStore: {
      out = arrayRec(e->args[0].get());
      const Interval idx = scalarRec(e->args[1].get()).integralHull();
      const Interval val = scalarRec(e->args[2].get());
      const auto n = static_cast<std::int64_t>(out.size());
      if (!idx.isEmpty() && n > 0) {
        const auto lo = static_cast<std::int64_t>(
            std::clamp(idx.lo(), 0.0, static_cast<double>(n - 1)));
        const auto hi = static_cast<std::int64_t>(
            std::clamp(idx.hi(), 0.0, static_cast<double>(n - 1)));
        if (lo == hi) {
          out[static_cast<std::size_t>(lo)] = val;  // definite write
        } else {
          for (std::int64_t i = lo; i <= hi; ++i) {
            auto& slot = out[static_cast<std::size_t>(i)];
            slot = slot.hull(val);  // may or may not be written
          }
        }
      }
      break;
    }
    case Op::kIte: {
      const Interval c = scalarRec(e->args[0].get());
      if (c.isTrue()) {
        out = arrayRec(e->args[1].get());
      } else if (c.isFalse()) {
        out = arrayRec(e->args[2].get());
      } else {
        out = arrayRec(e->args[1].get());
        const auto other = arrayRec(e->args[2].get());
        for (std::size_t i = 0; i < out.size() && i < other.size(); ++i) {
          out[i] = out[i].hull(other[i]);
        }
      }
      break;
    }
    default:
      assert(false && "scalar node in array interval eval");
      break;
  }
  arrayMemo_.emplace(e, out);
  return out;
}

}  // namespace stcg::analysis
