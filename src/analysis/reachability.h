// Interval reachability analysis and dead-branch pre-verification.
//
// The paper's Discussion observes that STCG wastes solver time attempting
// branches whose conditions are "perpetually false" (the LEDLC Switch-Case
// default arm), and suggests verifying unreachable branches "using the
// formal method to improve efficiency". This module implements that
// suggestion as an abstract interpretation:
//
//   1. Compute a state invariant: one interval per state element,
//      over-approximating every reachable value. Starting from the initial
//      state, the next-state functions are evaluated on interval domains
//      (inputs at their declared ranges) and the result is hulled into the
//      invariant until fixpoint, with widening after a few iterations.
//      Saturations, table clamps and chart-state structure keep the
//      invariant tight in practice.
//
//   2. A branch whose path constraint evaluates to definitely-false under
//      the invariant (and full input ranges) can never execute: it is
//      *provably dead*. Soundness follows from the evaluator's
//      over-approximation — a dead verdict is a proof, while "possibly
//      live" says nothing.
//
// StcgGenerator consumes the report via GenOptions::pruneProvablyDead.
#pragma once

#include <string>
#include <vector>

#include "analysis/interval_eval.h"
#include "compile/compiled_model.h"

namespace stcg::analysis {

struct ReachabilityOptions {
  int maxIterations = 64;  // fixpoint iteration cap
  int widenAfter = 12;     // iterations before widening kicks in
  /// Escalate inconclusive interval verdicts to an exhaustive solver
  /// query: the branch's path constraint is solved with the scalar state
  /// leaves as bounded variables (domains from the invariant); a proven
  /// UNSAT is a dead-branch proof even where plain interval evaluation is
  /// too coarse (e.g. the LEDLC Switch-Case default needs case splits on
  /// the mode variable). Constraints still containing array state are
  /// left at the interval verdict.
  bool solverBackedProofs = true;
  std::int64_t solverBudgetMillis = 60;  // per-branch proof budget
  /// Lane-parallel sub-box refutation (between HC4 and the solver): the
  /// invariant-bounded proof box is bisected along its widest dimensions —
  /// integer dims split between integers, so a small mode domain
  /// decomposes into exact cases — into up to this many sub-boxes, and
  /// the constraint is judged under all of them in one B-wide batched
  /// interval pass (analysis::intervalVerdictsBatch). Definitely-false on
  /// every lane is a dead proof (the sub-boxes cover the box) at a
  /// fraction of a solver query's cost. <= 1 disables the layer.
  int subBoxLanes = 8;
};

/// The state invariant: interval domains per state variable (elementwise
/// for arrays), plus convergence metadata.
struct StateInvariant {
  IntervalEnv env;
  bool converged = false;
  int iterations = 0;
};

/// Iterate the abstract step function to a (possibly widened) fixpoint.
[[nodiscard]] StateInvariant computeStateInvariant(
    const compile::CompiledModel& cm, const ReachabilityOptions& opt = {});

struct DeadBranchReport {
  std::vector<int> deadBranches;  // branch ids proven unreachable
  StateInvariant invariant;

  [[nodiscard]] bool isDead(int branchId) const;
};

/// Prove branches unreachable under the state invariant.
[[nodiscard]] DeadBranchReport findDeadBranches(
    const compile::CompiledModel& cm, const ReachabilityOptions& opt = {});

/// Attempt to prove an arbitrary boolean constraint over (inputs, state)
/// unsatisfiable from every reachable state. Four escalating layers:
/// (1) forward interval evaluation under the invariant, (2) HC4
/// contraction of the invariant-bounded box (inputs + scalar state),
/// (3) lane-parallel sub-box refutation (subBoxLanes candidate sub-boxes
/// judged per batched interval pass), and (4) an exhaustive solver
/// refutation when solverBackedProofs is set. A true result is a proof;
/// false means "possibly satisfiable". Constraints over array state stop
/// after layer (1).
[[nodiscard]] bool proveConstraintDead(const compile::CompiledModel& cm,
                                       const StateInvariant& inv,
                                       const expr::ExprPtr& constraint,
                                       const ReachabilityOptions& opt = {});

/// Layers (2) and (3) of proveConstraintDead, given a precomputed layer-(1)
/// interval verdict for `constraint` under the invariant. Callers judging
/// many constraints under one environment batch layer (1) through a single
/// tape pass (analysis::intervalVerdicts) and escalate survivors here.
[[nodiscard]] bool proveConstraintDeadFrom(const compile::CompiledModel& cm,
                                           const StateInvariant& inv,
                                           const expr::ExprPtr& constraint,
                                           const interval::Interval& verdict,
                                           const ReachabilityOptions& opt = {});

/// Human-readable rendering of the invariant (diagnostics).
[[nodiscard]] std::string renderInvariant(const compile::CompiledModel& cm,
                                          const StateInvariant& inv);

}  // namespace stcg::analysis
