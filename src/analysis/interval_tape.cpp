#include "analysis/interval_tape.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "expr/tape_verify.h"

namespace stcg::analysis {

using expr::Op;
using expr::TapeInstr;
using expr::Type;
using interval::Interval;

Interval intervalTransferScalar(Op op, Type type, const Interval& a,
                                const Interval& b, const Interval& c) {
  switch (op) {
    case Op::kNot:
      return notI(a);
    case Op::kNeg:
      return negI(a);
    case Op::kAbs:
      return absI(a);
    case Op::kCast: {
      if (type == Type::kBool) {
        if (a.isEmpty()) return a;
        if (a.isPoint()) {
          return a.lo() == 0.0 ? Interval::boolFalse() : Interval::boolTrue();
        }
        return a.containsZero() ? Interval::boolUnknown()
                                : Interval::boolTrue();
      }
      if (type == Type::kInt) {
        return a.isEmpty() ? a
                           : Interval(std::trunc(a.lo()), std::trunc(a.hi()));
      }
      return a;
    }
    case Op::kAdd:
      return addI(a, b);
    case Op::kSub:
      return subI(a, b);
    case Op::kMul:
      return mulI(a, b);
    case Op::kDiv: {
      Interval out = divI(a, b);
      // Integer division truncates toward zero (see IntervalEvaluator).
      if (type == Type::kInt && !out.isEmpty()) {
        out = Interval(std::trunc(out.lo()), std::trunc(out.hi()));
      }
      return out;
    }
    case Op::kMod:
      return modI(a, b);
    case Op::kMin:
      return minI(a, b);
    case Op::kMax:
      return maxI(a, b);
    case Op::kLt:
      return ltI(a, b);
    case Op::kLe:
      return leI(a, b);
    case Op::kGt:
      return ltI(b, a);
    case Op::kGe:
      return leI(b, a);
    case Op::kEq:
      return eqI(a, b);
    case Op::kNe:
      return notI(eqI(a, b));
    case Op::kAnd:
      return andI(a, b);
    case Op::kOr:
      return orI(a, b);
    case Op::kXor:
      return xorI(a, b);
    case Op::kIte:  // scalar result; no cast, unlike the concrete engine
      if (a.isTrue()) return b;
      if (a.isFalse()) return c;
      return b.hull(c);
    default:
      return Interval::whole();
  }
}

namespace {

bool sameBits(double x, double y) {
  std::uint64_t bx = 0, by = 0;
  std::memcpy(&bx, &x, sizeof(bx));
  std::memcpy(&by, &y, sizeof(by));
  return bx == by;
}

}  // namespace

expr::TapePassOptions intervalSafePassOptions() {
  expr::TapePassOptions opts;
  opts.intervalSafe = true;
  opts.foldGuard = [](const TapeInstr& in, const expr::Scalar* a,
                      const expr::Scalar* b, const expr::Scalar* c,
                      const expr::Scalar& folded) {
    if (in.arrayResult || in.op == Op::kSelect || in.op == Op::kStore) {
      return false;
    }
    const auto pt = [](const expr::Scalar* s) {
      return s != nullptr ? Interval::point(s->toReal()) : Interval::empty();
    };
    // The fold replaces the instruction's slot with a constant slot; the
    // executor's constructor images that as point(folded.toReal()). The
    // fold is exact iff the transfer on the operands' point images lands
    // on exactly those bits.
    const Interval got =
        intervalTransferScalar(in.op, in.type, pt(a), pt(b), pt(c));
    const Interval want = Interval::point(folded.toReal());
    return !got.isEmpty() && sameBits(got.lo(), want.lo()) &&
           sameBits(got.hi(), want.hi());
  };
  return opts;
}

IntervalTapeBuild buildIntervalTape(const std::vector<expr::ExprPtr>& roots) {
  expr::TapeBuilder b;
  IntervalTapeBuild out;
  out.rootSlots.reserve(roots.size());
  for (const auto& r : roots) out.rootSlots.push_back(b.addRoot(r));
  out.rawTape = b.finish();
  expr::maybeRequireVerifiedTape(*out.rawTape, "buildIntervalTape(raw)");
  if (expr::tapeOptEnabled()) {
    expr::OptimizedTape opt =
        expr::optimizeTape(out.rawTape, {}, intervalSafePassOptions());
    expr::maybeRequireVerifiedTape(*opt.tape, "buildIntervalTape(optimized)");
    out.tape = std::move(opt.tape);
    out.stats = opt.stats;
    for (expr::SlotRef& r : out.rootSlots) r = opt.remap(r);
  } else {
    out.tape = out.rawTape;
    out.stats.instrsBefore = out.stats.instrsAfter = out.tape->code().size();
    out.stats.scalarSlotsBefore = out.stats.scalarSlotsAfter =
        out.tape->scalarSlotCount();
    out.stats.arraySlotsBefore = out.stats.arraySlotsAfter =
        out.tape->arraySlotCount();
  }
  return out;
}

IntervalTapeExecutor::IntervalTapeExecutor(
    std::shared_ptr<const expr::Tape> tape)
    : tape_(std::move(tape)),
      scalars_(tape_->scalarSlotCount()),
      arrays_(tape_->arraySlotCount()) {
  // Constant slots never change: image them into the interval domain once.
  const auto& sInit = tape_->scalarInit();
  for (const std::int32_t slot : tape_->constScalarSlots()) {
    scalars_[static_cast<std::size_t>(slot)] =
        Interval::point(sInit[static_cast<std::size_t>(slot)].toReal());
  }
  const auto& aInit = tape_->arrayInit();
  for (const std::int32_t slot : tape_->constArraySlots()) {
    auto& dst = arrays_[static_cast<std::size_t>(slot)];
    const auto& src = aInit[static_cast<std::size_t>(slot)];
    dst.reserve(src.size());
    for (const auto& s : src) dst.push_back(Interval::point(s.toReal()));
  }
}

void IntervalTapeExecutor::bind(const IntervalEnv& env) {
  for (const auto& b : tape_->varBindings()) {
    Interval iv;
    if (env.has(b.var)) {
      iv = env.get(b.var);
    } else {
      iv = Interval(b.lo, b.hi);
      if (b.type != Type::kReal) iv = iv.integralHull();
    }
    scalars_[static_cast<std::size_t>(b.slot)] = iv;
  }
  for (const auto& b : tape_->arrayBindings()) {
    auto& dst = arrays_[static_cast<std::size_t>(b.slot)];
    if (env.hasArray(b.var)) {
      dst = env.getArray(b.var);
    } else {
      dst.assign(static_cast<std::size_t>(b.size), Interval::whole());
    }
  }
}

void IntervalTapeExecutor::run() {
  for (const TapeInstr& in : tape_->code()) exec(in);
}

void IntervalTapeExecutor::exec(const TapeInstr& in) {
  // Per-op transfer functions mirror IntervalEvaluator::scalarRec /
  // arrayRec — results are identical to the tree walk. Pure scalar ops
  // delegate to intervalTransferScalar (shared with the optimizer's
  // fold guard); the array-reading ops stay here.
  const auto s = [&](std::int32_t slot) -> const Interval& {
    return scalars_[static_cast<std::size_t>(slot)];
  };
  const auto a = [&](std::int32_t slot) -> const std::vector<Interval>& {
    return arrays_[static_cast<std::size_t>(slot)];
  };
  Interval out;
  switch (in.op) {
    case Op::kIte:
      if (in.arrayResult) {
        const Interval& c = s(in.a);
        auto& dst = arrays_[static_cast<std::size_t>(in.dst)];
        if (c.isTrue()) {
          dst = a(in.b);
        } else if (c.isFalse()) {
          dst = a(in.c);
        } else {
          dst = a(in.b);
          const auto& other = a(in.c);
          for (std::size_t i = 0; i < dst.size() && i < other.size(); ++i) {
            dst[i] = dst[i].hull(other[i]);
          }
        }
        return;
      }
      out = intervalTransferScalar(in.op, in.type, s(in.a), s(in.b), s(in.c));
      break;
    case Op::kSelect: {
      const auto& arr = a(in.a);
      const Interval idx = s(in.b).integralHull();
      const auto n = static_cast<std::int64_t>(arr.size());
      Interval acc = Interval::empty();
      if (!idx.isEmpty() && n > 0) {
        const auto lo = static_cast<std::int64_t>(
            std::clamp(idx.lo(), 0.0, static_cast<double>(n - 1)));
        const auto hi = static_cast<std::int64_t>(
            std::clamp(idx.hi(), 0.0, static_cast<double>(n - 1)));
        for (std::int64_t i = lo; i <= hi; ++i) {
          acc = acc.hull(arr[static_cast<std::size_t>(i)]);
        }
      }
      out = acc;
      break;
    }
    case Op::kStore: {
      auto& dst = arrays_[static_cast<std::size_t>(in.dst)];
      dst = a(in.a);
      const Interval idx = s(in.b).integralHull();
      const Interval val = s(in.c);
      const auto n = static_cast<std::int64_t>(dst.size());
      if (!idx.isEmpty() && n > 0) {
        const auto lo = static_cast<std::int64_t>(
            std::clamp(idx.lo(), 0.0, static_cast<double>(n - 1)));
        const auto hi = static_cast<std::int64_t>(
            std::clamp(idx.hi(), 0.0, static_cast<double>(n - 1)));
        if (lo == hi) {
          dst[static_cast<std::size_t>(lo)] = val;  // definite write
        } else {
          for (std::int64_t i = lo; i <= hi; ++i) {
            auto& slot = dst[static_cast<std::size_t>(i)];
            slot = slot.hull(val);  // may or may not be written
          }
        }
      }
      return;
    }
    default:
      out = intervalTransferScalar(
          in.op, in.type, s(in.a),
          in.b >= 0 ? s(in.b) : Interval::empty(),
          in.c >= 0 ? s(in.c) : Interval::empty());
      break;
  }
  scalars_[static_cast<std::size_t>(in.dst)] = out;
}

BatchIntervalTapeExecutor::BatchIntervalTapeExecutor(
    std::shared_ptr<const expr::Tape> tape, int lanes)
    : tape_(std::move(tape)), lanes_(std::max(1, lanes)) {
  const auto B = static_cast<std::size_t>(lanes_);
  scalars_.resize(tape_->scalarSlotCount() * B);
  arrays_.resize(tape_->arraySlotCount() * B);
  // Constant slots never change: image them into every lane once.
  const auto& sInit = tape_->scalarInit();
  for (const std::int32_t slot : tape_->constScalarSlots()) {
    const Interval iv =
        Interval::point(sInit[static_cast<std::size_t>(slot)].toReal());
    for (int l = 0; l < lanes_; ++l) scalars_[idx(slot, l)] = iv;
  }
  const auto& aInit = tape_->arrayInit();
  for (const std::int32_t slot : tape_->constArraySlots()) {
    const auto& src = aInit[static_cast<std::size_t>(slot)];
    std::vector<Interval> imaged;
    imaged.reserve(src.size());
    for (const auto& s : src) imaged.push_back(Interval::point(s.toReal()));
    for (int l = 0; l < lanes_; ++l) arrays_[idx(slot, l)] = imaged;
  }
}

void BatchIntervalTapeExecutor::bind(int lane, const IntervalEnv& env) {
  for (const auto& b : tape_->varBindings()) {
    Interval iv;
    if (env.has(b.var)) {
      iv = env.get(b.var);
    } else {
      iv = Interval(b.lo, b.hi);
      if (b.type != Type::kReal) iv = iv.integralHull();
    }
    scalars_[idx(b.slot, lane)] = iv;
  }
  for (const auto& b : tape_->arrayBindings()) {
    auto& dst = arrays_[idx(b.slot, lane)];
    if (env.hasArray(b.var)) {
      dst = env.getArray(b.var);
    } else {
      dst.assign(static_cast<std::size_t>(b.size), Interval::whole());
    }
  }
}

void BatchIntervalTapeExecutor::run() {
  for (const TapeInstr& in : tape_->code()) exec(in);
}

void BatchIntervalTapeExecutor::exec(const TapeInstr& in) {
  // Same per-op transfers as IntervalTapeExecutor::exec, instruction
  // outside / lane inside so the op dispatch is paid once per B lanes.
  const int B = lanes_;
  switch (in.op) {
    case Op::kIte:
      if (in.arrayResult) {
        for (int l = 0; l < B; ++l) {
          const Interval& c = scalars_[idx(in.a, l)];
          auto& dst = arrays_[idx(in.dst, l)];
          if (c.isTrue()) {
            dst = arrays_[idx(in.b, l)];
          } else if (c.isFalse()) {
            dst = arrays_[idx(in.c, l)];
          } else {
            dst = arrays_[idx(in.b, l)];
            const auto& other = arrays_[idx(in.c, l)];
            for (std::size_t i = 0; i < dst.size() && i < other.size(); ++i) {
              dst[i] = dst[i].hull(other[i]);
            }
          }
        }
        return;
      }
      for (int l = 0; l < B; ++l) {
        scalars_[idx(in.dst, l)] = intervalTransferScalar(
            in.op, in.type, scalars_[idx(in.a, l)], scalars_[idx(in.b, l)],
            scalars_[idx(in.c, l)]);
      }
      return;
    case Op::kSelect:
      for (int l = 0; l < B; ++l) {
        const auto& arr = arrays_[idx(in.a, l)];
        const Interval sIdx = scalars_[idx(in.b, l)].integralHull();
        const auto n = static_cast<std::int64_t>(arr.size());
        Interval acc = Interval::empty();
        if (!sIdx.isEmpty() && n > 0) {
          const auto lo = static_cast<std::int64_t>(
              std::clamp(sIdx.lo(), 0.0, static_cast<double>(n - 1)));
          const auto hi = static_cast<std::int64_t>(
              std::clamp(sIdx.hi(), 0.0, static_cast<double>(n - 1)));
          for (std::int64_t i = lo; i <= hi; ++i) {
            acc = acc.hull(arr[static_cast<std::size_t>(i)]);
          }
        }
        scalars_[idx(in.dst, l)] = acc;
      }
      return;
    case Op::kStore:
      for (int l = 0; l < B; ++l) {
        auto& dst = arrays_[idx(in.dst, l)];
        dst = arrays_[idx(in.a, l)];
        const Interval sIdx = scalars_[idx(in.b, l)].integralHull();
        const Interval val = scalars_[idx(in.c, l)];
        const auto n = static_cast<std::int64_t>(dst.size());
        if (!sIdx.isEmpty() && n > 0) {
          const auto lo = static_cast<std::int64_t>(
              std::clamp(sIdx.lo(), 0.0, static_cast<double>(n - 1)));
          const auto hi = static_cast<std::int64_t>(
              std::clamp(sIdx.hi(), 0.0, static_cast<double>(n - 1)));
          if (lo == hi) {
            dst[static_cast<std::size_t>(lo)] = val;  // definite write
          } else {
            for (std::int64_t i = lo; i <= hi; ++i) {
              auto& slot = dst[static_cast<std::size_t>(i)];
              slot = slot.hull(val);  // may or may not be written
            }
          }
        }
      }
      return;
    default:
      for (int l = 0; l < B; ++l) {
        scalars_[idx(in.dst, l)] = intervalTransferScalar(
            in.op, in.type, scalars_[idx(in.a, l)],
            in.b >= 0 ? scalars_[idx(in.b, l)] : Interval::empty(),
            in.c >= 0 ? scalars_[idx(in.c, l)] : Interval::empty());
      }
      return;
  }
}

std::vector<Interval> intervalVerdicts(
    const std::vector<expr::ExprPtr>& roots, const IntervalEnv& env) {
  const IntervalTapeBuild built = buildIntervalTape(roots);
  IntervalTapeExecutor ex(built.tape);
  ex.bind(env);
  ex.run();
  std::vector<Interval> out;
  out.reserve(built.rootSlots.size());
  for (const auto& slot : built.rootSlots) out.push_back(ex.scalar(slot));
  return out;
}

std::vector<std::vector<Interval>> intervalVerdictsBatch(
    const std::vector<expr::ExprPtr>& roots,
    const std::vector<IntervalEnv>& envs) {
  std::vector<std::vector<Interval>> out(envs.size());
  if (envs.empty()) return out;
  const IntervalTapeBuild built = buildIntervalTape(roots);
  BatchIntervalTapeExecutor ex(built.tape, static_cast<int>(envs.size()));
  for (std::size_t e = 0; e < envs.size(); ++e) {
    ex.bind(static_cast<int>(e), envs[e]);
  }
  ex.run();
  for (std::size_t e = 0; e < envs.size(); ++e) {
    out[e].reserve(built.rootSlots.size());
    for (const auto& slot : built.rootSlots) {
      out[e].push_back(ex.scalar(slot, static_cast<int>(e)));
    }
  }
  return out;
}

}  // namespace stcg::analysis
