#include "analysis/interval_tape.h"

#include <algorithm>
#include <cmath>

namespace stcg::analysis {

using expr::Op;
using expr::TapeInstr;
using expr::Type;
using interval::Interval;

IntervalTapeExecutor::IntervalTapeExecutor(
    std::shared_ptr<const expr::Tape> tape)
    : tape_(std::move(tape)),
      scalars_(tape_->scalarSlotCount()),
      arrays_(tape_->arraySlotCount()) {
  // Constant slots never change: image them into the interval domain once.
  const auto& sInit = tape_->scalarInit();
  for (const std::int32_t slot : tape_->constScalarSlots()) {
    scalars_[static_cast<std::size_t>(slot)] =
        Interval::point(sInit[static_cast<std::size_t>(slot)].toReal());
  }
  const auto& aInit = tape_->arrayInit();
  for (const std::int32_t slot : tape_->constArraySlots()) {
    auto& dst = arrays_[static_cast<std::size_t>(slot)];
    const auto& src = aInit[static_cast<std::size_t>(slot)];
    dst.reserve(src.size());
    for (const auto& s : src) dst.push_back(Interval::point(s.toReal()));
  }
}

void IntervalTapeExecutor::bind(const IntervalEnv& env) {
  for (const auto& b : tape_->varBindings()) {
    Interval iv;
    if (env.has(b.var)) {
      iv = env.get(b.var);
    } else {
      iv = Interval(b.lo, b.hi);
      if (b.type != Type::kReal) iv = iv.integralHull();
    }
    scalars_[static_cast<std::size_t>(b.slot)] = iv;
  }
  for (const auto& b : tape_->arrayBindings()) {
    auto& dst = arrays_[static_cast<std::size_t>(b.slot)];
    if (env.hasArray(b.var)) {
      dst = env.getArray(b.var);
    } else {
      dst.assign(static_cast<std::size_t>(b.size), Interval::whole());
    }
  }
}

void IntervalTapeExecutor::run() {
  for (const TapeInstr& in : tape_->code()) exec(in);
}

void IntervalTapeExecutor::exec(const TapeInstr& in) {
  // Per-op transfer functions copied from IntervalEvaluator::scalarRec /
  // arrayRec — results are identical to the tree walk.
  const auto s = [&](std::int32_t slot) -> const Interval& {
    return scalars_[static_cast<std::size_t>(slot)];
  };
  const auto a = [&](std::int32_t slot) -> const std::vector<Interval>& {
    return arrays_[static_cast<std::size_t>(slot)];
  };
  Interval out;
  switch (in.op) {
    case Op::kNot:
      out = notI(s(in.a));
      break;
    case Op::kNeg:
      out = negI(s(in.a));
      break;
    case Op::kAbs:
      out = absI(s(in.a));
      break;
    case Op::kCast: {
      const Interval& x = s(in.a);
      if (in.type == Type::kBool) {
        if (x.isEmpty()) {
          out = x;
        } else if (x.isPoint()) {
          out = x.lo() == 0.0 ? Interval::boolFalse() : Interval::boolTrue();
        } else {
          out = x.containsZero() ? Interval::boolUnknown()
                                 : Interval::boolTrue();
        }
      } else if (in.type == Type::kInt) {
        out = x.isEmpty() ? x
                          : Interval(std::trunc(x.lo()), std::trunc(x.hi()));
      } else {
        out = x;
      }
      break;
    }
    case Op::kAdd:
      out = addI(s(in.a), s(in.b));
      break;
    case Op::kSub:
      out = subI(s(in.a), s(in.b));
      break;
    case Op::kMul:
      out = mulI(s(in.a), s(in.b));
      break;
    case Op::kDiv:
      out = divI(s(in.a), s(in.b));
      // Integer division truncates toward zero (see IntervalEvaluator).
      if (in.type == Type::kInt && !out.isEmpty()) {
        out = Interval(std::trunc(out.lo()), std::trunc(out.hi()));
      }
      break;
    case Op::kMod:
      out = modI(s(in.a), s(in.b));
      break;
    case Op::kMin:
      out = minI(s(in.a), s(in.b));
      break;
    case Op::kMax:
      out = maxI(s(in.a), s(in.b));
      break;
    case Op::kLt:
      out = ltI(s(in.a), s(in.b));
      break;
    case Op::kLe:
      out = leI(s(in.a), s(in.b));
      break;
    case Op::kGt:
      out = ltI(s(in.b), s(in.a));
      break;
    case Op::kGe:
      out = leI(s(in.b), s(in.a));
      break;
    case Op::kEq:
      out = eqI(s(in.a), s(in.b));
      break;
    case Op::kNe:
      out = notI(eqI(s(in.a), s(in.b)));
      break;
    case Op::kAnd:
      out = andI(s(in.a), s(in.b));
      break;
    case Op::kOr:
      out = orI(s(in.a), s(in.b));
      break;
    case Op::kXor:
      out = xorI(s(in.a), s(in.b));
      break;
    case Op::kIte: {
      const Interval& c = s(in.a);
      if (in.arrayResult) {
        auto& dst = arrays_[static_cast<std::size_t>(in.dst)];
        if (c.isTrue()) {
          dst = a(in.b);
        } else if (c.isFalse()) {
          dst = a(in.c);
        } else {
          dst = a(in.b);
          const auto& other = a(in.c);
          for (std::size_t i = 0; i < dst.size() && i < other.size(); ++i) {
            dst[i] = dst[i].hull(other[i]);
          }
        }
        return;
      }
      if (c.isTrue()) {
        out = s(in.b);
      } else if (c.isFalse()) {
        out = s(in.c);
      } else {
        out = s(in.b).hull(s(in.c));
      }
      break;
    }
    case Op::kSelect: {
      const auto& arr = a(in.a);
      const Interval idx = s(in.b).integralHull();
      const auto n = static_cast<std::int64_t>(arr.size());
      Interval acc = Interval::empty();
      if (!idx.isEmpty() && n > 0) {
        const auto lo = static_cast<std::int64_t>(
            std::clamp(idx.lo(), 0.0, static_cast<double>(n - 1)));
        const auto hi = static_cast<std::int64_t>(
            std::clamp(idx.hi(), 0.0, static_cast<double>(n - 1)));
        for (std::int64_t i = lo; i <= hi; ++i) {
          acc = acc.hull(arr[static_cast<std::size_t>(i)]);
        }
      }
      out = acc;
      break;
    }
    case Op::kStore: {
      auto& dst = arrays_[static_cast<std::size_t>(in.dst)];
      dst = a(in.a);
      const Interval idx = s(in.b).integralHull();
      const Interval val = s(in.c);
      const auto n = static_cast<std::int64_t>(dst.size());
      if (!idx.isEmpty() && n > 0) {
        const auto lo = static_cast<std::int64_t>(
            std::clamp(idx.lo(), 0.0, static_cast<double>(n - 1)));
        const auto hi = static_cast<std::int64_t>(
            std::clamp(idx.hi(), 0.0, static_cast<double>(n - 1)));
        if (lo == hi) {
          dst[static_cast<std::size_t>(lo)] = val;  // definite write
        } else {
          for (std::int64_t i = lo; i <= hi; ++i) {
            auto& slot = dst[static_cast<std::size_t>(i)];
            slot = slot.hull(val);  // may or may not be written
          }
        }
      }
      return;
    }
    default:
      out = Interval::whole();
      break;
  }
  scalars_[static_cast<std::size_t>(in.dst)] = out;
}

std::vector<Interval> intervalVerdicts(
    const std::vector<expr::ExprPtr>& roots, const IntervalEnv& env) {
  expr::TapeBuilder b;
  std::vector<expr::SlotRef> slots;
  slots.reserve(roots.size());
  for (const auto& r : roots) slots.push_back(b.addRoot(r));
  IntervalTapeExecutor ex(b.finish());
  ex.bind(env);
  ex.run();
  std::vector<Interval> out;
  out.reserve(slots.size());
  for (const auto& slot : slots) out.push_back(ex.scalar(slot));
  return out;
}

}  // namespace stcg::analysis
