// Interval-domain execution of a compiled expression tape — the abstract
// counterpart of expr::TapeExecutor, mirroring IntervalEvaluator's per-op
// transfer functions over the same flat instruction sequence.
//
// The reachability fixpoint re-evaluates the same next-state DAG dozens of
// times under changing interval environments; dead-branch / lint proofs
// evaluate every path constraint once under the invariant. Both walks pay
// the tree Evaluator's pointer-chasing and memo hashing per node per pass.
// Compiling the roots to a tape once and rebinding per pass turns each
// pass into a linear sweep over dense interval slots.
//
// Binding semantics match IntervalEvaluator: a variable absent from the
// IntervalEnv falls back to its declared [lo, hi] domain (integral-hulled
// for non-real types); an absent array variable becomes size × whole().
// Results are identical to the tree walk on every op (same transfer
// functions applied in the same dependency order).
#pragma once

#include <memory>
#include <vector>

#include "analysis/interval_eval.h"
#include "expr/tape.h"
#include "expr/tape_passes.h"
#include "interval/interval.h"

namespace stcg::analysis {

/// The interval transfer of one scalar-result tape instruction (every op
/// except kSelect/kStore/array-kIte, which read array slots). Exactly the
/// per-op logic IntervalTapeExecutor::exec applies — exposed so the
/// optimizer's fold guard can replay a transfer on point operands and
/// admit only point-exact folds. Unused operands may be passed as any
/// interval (they are ignored).
[[nodiscard]] interval::Interval intervalTransferScalar(
    expr::Op op, expr::Type type, const interval::Interval& a,
    const interval::Interval& b, const interval::Interval& c);

/// Pass options for tapes consumed by IntervalTapeExecutor: restricts
/// the pipeline to rewrites exact in the interval domain, with a fold
/// guard that replays intervalTransferScalar on point operands and
/// compares bits against the folded constant's interval image.
[[nodiscard]] expr::TapePassOptions intervalSafePassOptions();

/// Build one CSE-shared tape over `roots` and run the interval-safe
/// pass pipeline on it (skipped under STCG_TAPE_OPT=0). `roots[i]`'s
/// slot is `rootSlots[i]` on `tape`; `rawTape` keeps the unoptimized
/// build as the differential oracle.
struct IntervalTapeBuild {
  std::shared_ptr<const expr::Tape> tape;
  std::shared_ptr<const expr::Tape> rawTape;
  std::vector<expr::SlotRef> rootSlots;
  expr::TapePassStats stats;
};

[[nodiscard]] IntervalTapeBuild buildIntervalTape(
    const std::vector<expr::ExprPtr>& roots);

class IntervalTapeExecutor {
 public:
  explicit IntervalTapeExecutor(std::shared_ptr<const expr::Tape> tape);

  /// (Re)bind every tape variable: from `env` when bound there, else the
  /// declared-domain default. Call before each run().
  void bind(const IntervalEnv& env);

  /// Execute the full tape over interval slots.
  void run();

  [[nodiscard]] const interval::Interval& scalar(expr::SlotRef r) const {
    return scalars_[static_cast<std::size_t>(r.slot)];
  }
  [[nodiscard]] const std::vector<interval::Interval>& array(
      expr::SlotRef r) const {
    return arrays_[static_cast<std::size_t>(r.slot)];
  }

  [[nodiscard]] const expr::Tape& tape() const { return *tape_; }

 private:
  void exec(const expr::TapeInstr& in);

  std::shared_ptr<const expr::Tape> tape_;
  std::vector<interval::Interval> scalars_;
  std::vector<std::vector<interval::Interval>> arrays_;
};

/// B-lane interval execution: the same tape evaluated under `lanes`
/// independent interval environments per run(), slots laid out lane-major
/// (`[slot * lanes + lane]`) with the instruction loop outside and the
/// lane loop inside — the abstract counterpart of expr::BatchTapeExecutor.
/// The sub-box refutation layer of analysis::proveConstraintDeadFrom binds
/// one candidate sub-box per lane and refutes all of them in one sweep;
/// each lane's result is identical to IntervalTapeExecutor under that
/// lane's environment (both delegate to intervalTransferScalar).
class BatchIntervalTapeExecutor {
 public:
  /// `lanes` is clamped to >= 1. The tape is shared, never copied.
  BatchIntervalTapeExecutor(std::shared_ptr<const expr::Tape> tape,
                            int lanes);

  [[nodiscard]] int lanes() const { return lanes_; }

  /// (Re)bind every tape variable of `lane`: from `env` when bound there,
  /// else the declared-domain default (IntervalTapeExecutor::bind, per
  /// lane). Call for every lane before each run().
  void bind(int lane, const IntervalEnv& env);

  /// Execute the full tape across all lanes.
  void run();

  [[nodiscard]] const interval::Interval& scalar(expr::SlotRef r,
                                                 int lane) const {
    return scalars_[idx(r.slot, lane)];
  }
  [[nodiscard]] const std::vector<interval::Interval>& array(
      expr::SlotRef r, int lane) const {
    return arrays_[idx(r.slot, lane)];
  }

  [[nodiscard]] const expr::Tape& tape() const { return *tape_; }

 private:
  [[nodiscard]] std::size_t idx(std::int32_t slot, int lane) const {
    return static_cast<std::size_t>(slot) * static_cast<std::size_t>(lanes_) +
           static_cast<std::size_t>(lane);
  }
  void exec(const expr::TapeInstr& in);

  std::shared_ptr<const expr::Tape> tape_;
  int lanes_ = 1;
  std::vector<interval::Interval> scalars_;  // [slot * lanes + lane]
  std::vector<std::vector<interval::Interval>> arrays_;
};

/// Batch interval verdicts: compile all `roots` (scalar-typed) onto one
/// CSE-shared tape, execute it once under `env`, and return one interval
/// per root in order. Replaces N tree walks with one linear pass when many
/// constraints are judged under the same environment (dead-branch and lint
/// unreachability sweeps).
[[nodiscard]] std::vector<interval::Interval> intervalVerdicts(
    const std::vector<expr::ExprPtr>& roots, const IntervalEnv& env);

/// Lane-parallel form: judge the same `roots` under every environment in
/// `envs` with one tape build and one B-wide batched pass (B =
/// envs.size()). out[e][i] is roots[i]'s verdict under envs[e], identical
/// to intervalVerdicts(roots, envs[e])[i]. The workhorse of sub-box
/// refutation: each environment is one candidate sub-box.
[[nodiscard]] std::vector<std::vector<interval::Interval>>
intervalVerdictsBatch(const std::vector<expr::ExprPtr>& roots,
                      const std::vector<IntervalEnv>& envs);

}  // namespace stcg::analysis
