// Forward interval evaluation of expressions under interval-valued state
// and input environments — the abstract domain used by the reachability
// analysis (analysis/reachability.h).
//
// Unlike the HC4 contractor (whose variables live in a solver Box of
// scalar inputs), this evaluator binds *any* variable — including
// array-typed state leaves — to interval domains, so whole next-state
// functions can be evaluated abstractly.
#pragma once

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "expr/expr.h"
#include "interval/interval.h"

namespace stcg::analysis {

/// Interval bindings for scalar and array variables.
class IntervalEnv {
 public:
  void set(expr::VarId id, interval::Interval iv);
  void setArray(expr::VarId id, std::vector<interval::Interval> elems);

  [[nodiscard]] bool has(expr::VarId id) const;
  [[nodiscard]] bool hasArray(expr::VarId id) const;
  [[nodiscard]] const interval::Interval& get(expr::VarId id) const;
  [[nodiscard]] const std::vector<interval::Interval>& getArray(
      expr::VarId id) const;

 private:
  std::unordered_map<expr::VarId, interval::Interval> scalars_;
  std::unordered_map<expr::VarId, std::vector<interval::Interval>> arrays_;
};

/// Evaluate the possible values of `e` under `env`. Unbound variables
/// evaluate to their declared [lo, hi] domain (inputs), or to the finite
/// whole hull when no domain is known. Sound: the concrete value of `e`
/// under any concretization of `env` lies in the result.
class IntervalEvaluator {
 public:
  explicit IntervalEvaluator(const IntervalEnv& env) : env_(&env) {}

  [[nodiscard]] interval::Interval evalScalar(const expr::ExprPtr& e);
  [[nodiscard]] std::vector<interval::Interval> evalArray(
      const expr::ExprPtr& e);

  /// Number of distinct roots currently pinned (regression hook: reusing
  /// one evaluator across many calls on the same root must not grow this).
  [[nodiscard]] std::size_t pinnedRootCount() const {
    return pinnedRoots_.size();
  }

 private:
  interval::Interval scalarRec(const expr::Expr* e);
  std::vector<interval::Interval> arrayRec(const expr::Expr* e);

  const IntervalEnv* env_;
  std::unordered_map<const expr::Expr*, interval::Interval> memo_;
  std::unordered_map<const expr::Expr*, std::vector<interval::Interval>>
      arrayMemo_;
  // Pins evaluated roots so pointer-keyed memo entries can't go stale
  // (node addresses would otherwise be recyclable across calls).
  // Deduplicated by address: re-evaluating the same root must not grow
  // the pin list without bound.
  std::vector<expr::ExprPtr> pinnedRoots_;
  std::unordered_set<const expr::Expr*> pinnedSet_;
};

}  // namespace stcg::analysis
