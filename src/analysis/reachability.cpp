#include "analysis/reachability.h"

#include <algorithm>
#include <unordered_map>

#include "analysis/interval_tape.h"
#include "expr/tape.h"
#include "interval/box.h"
#include "interval/hc4.h"
#include "solver/solver.h"
#include "util/strings.h"

namespace stcg::analysis {

using interval::Interval;

namespace {

/// Interval hull of the declared initial value of a state variable.
std::vector<Interval> initDomains(const compile::StateVar& sv) {
  std::vector<Interval> out;
  out.reserve(static_cast<std::size_t>(sv.width));
  for (const auto& e : sv.init.elems()) {
    out.push_back(Interval::point(e.toReal()));
  }
  return out;
}

bool sameDomains(const std::vector<std::vector<Interval>>& a,
                 const std::vector<std::vector<Interval>>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].size() != b[i].size()) return false;
    for (std::size_t j = 0; j < a[i].size(); ++j) {
      if (!(a[i][j] == b[i][j])) return false;
    }
  }
  return true;
}

IntervalEnv toEnv(const compile::CompiledModel& cm,
                  const std::vector<std::vector<Interval>>& domains) {
  IntervalEnv env;
  for (std::size_t i = 0; i < cm.states.size(); ++i) {
    const auto& sv = cm.states[i];
    if (sv.width == 1) {
      env.set(sv.id, domains[i][0]);
    } else {
      env.setArray(sv.id, domains[i]);
    }
  }
  return env;
}

}  // namespace

StateInvariant computeStateInvariant(const compile::CompiledModel& cm,
                                     const ReachabilityOptions& opt) {
  // domains[i][j]: interval of element j of state variable i.
  std::vector<std::vector<Interval>> domains;
  domains.reserve(cm.states.size());
  for (const auto& sv : cm.states) domains.push_back(initDomains(sv));

  // The fixpoint re-evaluates the same next-state functions dozens of
  // times: compile them to one CSE-shared, interval-safely optimized
  // tape up front and rebind the interval environment per iteration.
  std::vector<expr::ExprPtr> nextRoots;
  nextRoots.reserve(cm.states.size());
  for (const auto& sv : cm.states) nextRoots.push_back(sv.next);
  const IntervalTapeBuild built = buildIntervalTape(nextRoots);
  const std::vector<expr::SlotRef>& nextSlots = built.rootSlots;
  IntervalTapeExecutor eval(built.tape);

  StateInvariant result;
  for (int iter = 0; iter < opt.maxIterations; ++iter) {
    eval.bind(toEnv(cm, domains));
    eval.run();

    auto next = domains;
    for (std::size_t i = 0; i < cm.states.size(); ++i) {
      const auto& sv = cm.states[i];
      if (sv.width == 1) {
        Interval stepped = eval.scalar(nextSlots[i]);
        if (sv.type != expr::Type::kReal) stepped = stepped.integralHull();
        next[i][0] = domains[i][0].hull(stepped);
      } else {
        const auto& stepped = eval.array(nextSlots[i]);
        for (std::size_t j = 0; j < next[i].size() && j < stepped.size();
             ++j) {
          Interval s = stepped[j];
          if (sv.type != expr::Type::kReal) s = s.integralHull();
          next[i][j] = domains[i][j].hull(s);
        }
      }
    }

    if (sameDomains(next, domains)) {
      result.converged = true;
      result.iterations = iter + 1;
      break;
    }

    if (iter >= opt.widenAfter) {
      // Widening: any still-growing dimension jumps to the finite whole
      // hull; clamping structure (saturations, table ends) usually pulls
      // it back at the next evaluation of the hull'ed input.
      for (std::size_t i = 0; i < next.size(); ++i) {
        for (std::size_t j = 0; j < next[i].size(); ++j) {
          if (!(next[i][j] == domains[i][j])) {
            next[i][j] = Interval::whole();
          }
        }
      }
    }
    domains = std::move(next);
    result.iterations = iter + 1;
  }

  if (result.converged) {
    // Narrowing: with Inv a post-fixpoint (step(Inv) ⊆ Inv), the refined
    // Inv' = init ∪ step(Inv) is still an invariant and is tighter —
    // it recovers bounds that widening overshot (a saturated counter
    // widened to ⊤ snaps back to its clamp range).
    for (int pass = 0; pass < 4; ++pass) {
      eval.bind(toEnv(cm, domains));
      eval.run();
      auto refined = domains;
      for (std::size_t i = 0; i < cm.states.size(); ++i) {
        const auto& sv = cm.states[i];
        const auto init = initDomains(sv);
        if (sv.width == 1) {
          Interval stepped = eval.scalar(nextSlots[i]);
          if (sv.type != expr::Type::kReal) stepped = stepped.integralHull();
          refined[i][0] = init[0].hull(stepped);
        } else {
          const auto& stepped = eval.array(nextSlots[i]);
          for (std::size_t j = 0; j < refined[i].size() && j < stepped.size();
               ++j) {
            Interval s = stepped[j];
            if (sv.type != expr::Type::kReal) s = s.integralHull();
            refined[i][j] = init[j].hull(s);
          }
        }
      }
      if (sameDomains(refined, domains)) break;
      domains = std::move(refined);
    }
  }

  result.env = toEnv(cm, domains);
  return result;
}

bool DeadBranchReport::isDead(int branchId) const {
  return std::binary_search(deadBranches.begin(), deadBranches.end(),
                            branchId);
}

namespace {

/// Variable table for the solver-backed proof: every input plus every
/// scalar state leaf, the latter bounded by the invariant. Returns false
/// when the constraint references array state (not solver-expressible).
bool proofVariables(const compile::CompiledModel& cm,
                    const StateInvariant& inv, const expr::ExprPtr& goal,
                    std::vector<expr::VarInfo>& out) {
  std::unordered_map<expr::VarId, const compile::StateVar*> stateById;
  for (const auto& sv : cm.states) stateById[sv.id] = &sv;

  for (const expr::VarId id : expr::collectVars(goal)) {
    const auto it = stateById.find(id);
    if (it == stateById.end()) continue;  // an input: added below
    const auto* sv = it->second;
    if (sv->width != 1) return false;  // array state: interval-only
    const Interval dom = inv.env.get(sv->id);
    expr::VarInfo vi;
    vi.id = sv->id;
    vi.name = sv->name;
    vi.type = sv->type;
    vi.lo = dom.lo();
    vi.hi = dom.hi();
    out.push_back(vi);
  }
  for (const auto& in : cm.inputs) out.push_back(in.info);
  return true;
}

/// Decompose the proof box spanned by `vars` into up to `lanes` sub-boxes
/// whose union covers it: greedy widest-dimension bisection, splitting
/// integer dimensions between integers (a width-k mode domain decomposes
/// into exact cases). Returns one environment per sub-box — a copy of
/// `base` (so array state stays bound) with the box variables overridden.
std::vector<IntervalEnv> splitProofBox(const std::vector<expr::VarInfo>& vars,
                                       const IntervalEnv& base, int lanes) {
  using Box = std::vector<Interval>;
  Box whole;
  whole.reserve(vars.size());
  for (const auto& v : vars) {
    Interval iv(v.lo, v.hi);
    if (v.type != expr::Type::kReal) iv = iv.integralHull();
    whole.push_back(iv);
  }
  std::vector<Box> boxes{std::move(whole)};
  while (static_cast<int>(boxes.size()) < lanes) {
    // Pick the (box, dim) pair with the widest splittable dimension.
    std::size_t bestB = boxes.size();
    std::size_t bestD = 0;
    double bestW = 0.0;
    for (std::size_t b = 0; b < boxes.size(); ++b) {
      for (std::size_t d = 0; d < vars.size(); ++d) {
        const Interval& iv = boxes[b][d];
        if (iv.isEmpty() || !std::isfinite(iv.lo()) ||
            !std::isfinite(iv.hi())) {
          continue;  // unbounded dims can't be midpoint-bisected
        }
        const bool integral = vars[d].type != expr::Type::kReal;
        const double w = iv.hi() - iv.lo();
        if (integral ? w < 1.0 : !(w > 0.0)) continue;  // atomic
        if (w > bestW) {
          bestW = w;
          bestB = b;
          bestD = d;
        }
      }
    }
    if (bestB == boxes.size()) break;  // nothing left to split
    Box right = boxes[bestB];
    Box& left = boxes[bestB];
    const Interval iv = left[bestD];
    if (vars[bestD].type != expr::Type::kReal) {
      const double m = std::floor(0.5 * (iv.lo() + iv.hi()));
      left[bestD] = Interval(iv.lo(), m);
      right[bestD] = Interval(m + 1.0, iv.hi());
    } else {
      const double m = 0.5 * (iv.lo() + iv.hi());
      left[bestD] = Interval(iv.lo(), m);
      right[bestD] = Interval(m, iv.hi());
    }
    boxes.push_back(std::move(right));
  }
  std::vector<IntervalEnv> envs;
  envs.reserve(boxes.size());
  for (const auto& box : boxes) {
    IntervalEnv env = base;
    for (std::size_t d = 0; d < vars.size(); ++d) env.set(vars[d].id, box[d]);
    envs.push_back(std::move(env));
  }
  return envs;
}

}  // namespace

bool proveConstraintDead(const compile::CompiledModel& cm,
                         const StateInvariant& inv,
                         const expr::ExprPtr& constraint,
                         const ReachabilityOptions& opt) {
  const Interval verdict = intervalVerdicts({constraint}, inv.env)[0];
  return proveConstraintDeadFrom(cm, inv, constraint, verdict, opt);
}

bool proveConstraintDeadFrom(const compile::CompiledModel& cm,
                             const StateInvariant& inv,
                             const expr::ExprPtr& constraint,
                             const Interval& verdict,
                             const ReachabilityOptions& opt) {
  if (verdict.isFalse()) return true;
  if (verdict.isTrue()) return false;

  std::vector<expr::VarInfo> vars;
  if (!proofVariables(cm, inv, constraint, vars)) {
    return false;  // array state: interval verdict is all we have
  }

  // HC4 contraction over the invariant-bounded box: an empty contraction
  // soundly refutes the constraint everywhere in the box, at a fraction of
  // a full solver query's cost.
  interval::Box box(vars);
  interval::Hc4Contractor contractor(constraint);
  if (contractor.contract(box, 8) == interval::ContractOutcome::kEmpty) {
    return true;
  }

  // Lane-parallel sub-box refutation: bisect the proof box into
  // opt.subBoxLanes sub-boxes and judge the constraint under all of them
  // in one batched interval pass. Their union covers the box, so
  // definitely-false on every lane refutes the constraint everywhere —
  // catching case splits (small integer mode domains) the whole-box
  // verdict hulls away.
  if (opt.subBoxLanes > 1 && !vars.empty()) {
    const auto envs = splitProofBox(vars, inv.env, opt.subBoxLanes);
    if (envs.size() > 1) {
      const auto lanes = intervalVerdictsBatch({constraint}, envs);
      bool allFalse = true;
      for (const auto& v : lanes) allFalse = allFalse && v[0].isFalse();
      if (allFalse) return true;
    }
  }

  if (!opt.solverBackedProofs) return false;
  // Exhaustive solver refutation: only a proven UNSAT counts.
  solver::SolveOptions so;
  so.timeBudgetMillis = opt.solverBudgetMillis;
  so.seed = 1;
  solver::BoxSolver proof(so);
  return proof.solve(constraint, vars).status == solver::SolveStatus::kUnsat;
}

DeadBranchReport findDeadBranches(const compile::CompiledModel& cm,
                                  const ReachabilityOptions& opt) {
  DeadBranchReport report;
  report.invariant = computeStateInvariant(cm, opt);
  // Layer (1) for every branch in one tape pass; survivors escalate.
  std::vector<expr::ExprPtr> constraints;
  constraints.reserve(cm.branches.size());
  for (const auto& br : cm.branches) constraints.push_back(br.pathConstraint);
  const auto verdicts = intervalVerdicts(constraints, report.invariant.env);
  for (std::size_t i = 0; i < cm.branches.size(); ++i) {
    const auto& br = cm.branches[i];
    if (proveConstraintDeadFrom(cm, report.invariant, br.pathConstraint,
                                verdicts[i], opt)) {
      report.deadBranches.push_back(br.id);
    }
  }
  std::sort(report.deadBranches.begin(), report.deadBranches.end());
  return report;
}

std::string renderInvariant(const compile::CompiledModel& cm,
                            const StateInvariant& inv) {
  std::string out = "State invariant (" +
                    std::string(inv.converged ? "converged" : "widened") +
                    " after " + std::to_string(inv.iterations) +
                    " iterations):\n";
  for (const auto& sv : cm.states) {
    out += "  " + sv.name + ": ";
    if (sv.width == 1) {
      out += inv.env.get(sv.id).toString();
    } else {
      const auto& arr = inv.env.getArray(sv.id);
      std::vector<std::string> parts;
      parts.reserve(arr.size());
      for (const auto& iv : arr) parts.push_back(iv.toString());
      out += "[" + join(parts, ", ") + "]";
    }
    out += "\n";
  }
  return out;
}

}  // namespace stcg::analysis
