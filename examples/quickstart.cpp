// Quickstart: build a small stateful model, generate tests with STCG,
// inspect the results.
//
//   $ ./build/examples/quickstart
//
// The model is a door controller: a keypad code (internal state = the
// previously entered digits) must match 3-1-2 across three consecutive
// steps to unlock — a classic "random search can't, state-aware solving
// can" target.
#include <cstdio>

#include "compile/compiler.h"
#include "model/model.h"
#include "stcg/export.h"
#include "stcg/stcg_generator.h"

using namespace stcg;
using expr::Scalar;
using expr::Type;

namespace {

model::Model buildDoorLock() {
  model::Model m("DoorLock");
  auto digit = m.addInport("digit", Type::kInt, 0, 9);

  // Two delays hold the previous two digits.
  auto prev1 = m.addUnitDelayHole("prev1", Scalar::i(-1));
  auto prev2 = m.addUnitDelayHole("prev2", Scalar::i(-1));
  m.bindDelayInput(prev1, digit);
  m.bindDelayInput(prev2, prev1);

  // Unlock when the last three digits are 3, 1, 2 (oldest first).
  auto isThree = m.addCompareToConst("is3", prev2, model::RelOp::kEq, 3);
  auto isOne = m.addCompareToConst("is1", prev1, model::RelOp::kEq, 1);
  auto isTwo = m.addCompareToConst("is2", digit, model::RelOp::kEq, 2);
  auto unlock =
      m.addLogical("unlock", model::LogicOp::kAnd, {isThree, isOne, isTwo});
  auto one = m.addConstant("one", Scalar::i(1));
  auto zero = m.addConstant("zero", Scalar::i(0));
  auto out = m.addSwitch("door", one, unlock, zero,
                         model::SwitchCriteria::kNotZero, 0.0);
  m.addOutport("unlocked", out);
  return m;
}

}  // namespace

int main() {
  // 1. Author a model and compile it.
  auto m = buildDoorLock();
  const auto cm = compile::compile(m);
  std::printf("Model '%s': %zu inputs, %zu state variables, %zu branches\n",
              cm.name.c_str(), cm.inputs.size(), cm.states.size(),
              cm.branches.size());

  // 2. Generate tests with STCG.
  gen::GenOptions opt;
  opt.budgetMillis = 2000;
  opt.seed = 42;
  gen::StcgGenerator stcg;
  const auto res = stcg.generate(cm, opt);

  // 3. Inspect coverage and the generated suite.
  std::printf("\nSTCG: %zu test cases, Decision %.1f%%, Condition %.1f%%, "
              "MCDC %.1f%%\n",
              res.tests.size(), res.coverage.decision * 100,
              res.coverage.condition * 100, res.coverage.mcdc * 100);
  std::printf("Solver: %d calls (%d SAT, %d UNSAT, %d unknown); "
              "%d state-tree nodes\n\n",
              res.stats.solveCalls, res.stats.solveSat, res.stats.solveUnsat,
              res.stats.solveUnknown, res.stats.treeNodes);
  std::printf("%s", gen::renderTestSuite(cm, res.tests).c_str());

  // The unlock branch needs digit=3, then 1, then 2 — look for it.
  for (const auto& t : res.tests) {
    if (t.steps.size() >= 3) {
      std::printf("\nMulti-step test reaching the deep unlock branch: %s\n",
                  t.goalLabel.c_str());
      break;
    }
  }
  return 0;
}
