// Authoring guide: build a model with every major construct — conditional
// regions, a chart, data stores, delays — run a hand-written test suite
// against it, and use the coverage report to find what the suite misses
// (including genuinely dead logic).
//
//   $ ./build/examples/custom_model_coverage
#include <cstdio>

#include "compile/compiler.h"
#include "expr/builder.h"
#include "model/model.h"
#include "sim/simulator.h"
#include "stcg/stcg_generator.h"

using namespace stcg;
using expr::Scalar;
using expr::Type;

namespace {

// A small battery charger: a mode chart (Idle/Charging/Full/Fault), a
// charge counter in a data store, and a current limiter in an
// if/else region.
model::Model buildCharger() {
  model::Model m("Charger");
  auto plugged = m.addInport("plugged", Type::kBool, 0, 1);
  auto voltage = m.addInport("voltage", Type::kReal, 0, 15);
  auto temp = m.addInport("temp", Type::kReal, -10, 90);

  const int energyStore =
      m.addDataStore("energy", Type::kReal, 1, Scalar::r(0.0));
  auto energy = m.addDataStoreRead("energy_rd", energyStore);

  auto hot = m.addCompareToConst("hot", temp, model::RelOp::kGt, 60.0);
  auto full = m.addCompareToConst("full", energy, model::RelOp::kGe, 100.0);
  auto overV = m.addCompareToConst("over_v", voltage, model::RelOp::kGt, 14.0);

  model::ChartBuilder cb(m, "mode");
  auto cPlug = cb.input("plugged", Type::kBool);
  auto cHot = cb.input("hot", Type::kBool);
  auto cFull = cb.input("full", Type::kBool);
  auto cOverV = cb.input("over_v", Type::kBool);
  const int sIdle = cb.addState("Idle");
  const int sCharge = cb.addState("Charging");
  const int sFull = cb.addState("Full");
  const int sFault = cb.addState("Fault");
  cb.addTransition(sIdle, sCharge, cPlug);
  cb.addTransition(sCharge, sFault, expr::orE(cHot, cOverV));
  cb.addTransition(sCharge, sFull, cFull);
  cb.addTransition(sCharge, sIdle, expr::notE(cPlug));
  cb.addTransition(sFull, sIdle, expr::notE(cPlug));
  cb.addTransition(sFault, sIdle, expr::notE(cPlug));
  cb.exposeActiveState();
  auto mode = m.addChart("mode_chart", cb.build(),
                         {plugged, hot, full, overV})[0];

  // Charging region: accumulate energy, with a current limit if/else.
  auto charging =
      m.addCompareToConst("is_charging", mode, model::RelOp::kEq, 1.0);
  const auto region = m.addEnabled("charge_on", charging);
  {
    model::RegionScope scope(m, region);
    auto lowBatt =
        m.addCompareToConst("low_energy", energy, model::RelOp::kLt, 20.0);
    const auto ifr = m.addIfElse("rate_sel", lowBatt);
    std::vector<std::pair<model::RegionId, model::PortRef>> rateArms;
    {
      model::RegionScope fast(m, ifr.thenRegion);
      rateArms.emplace_back(ifr.thenRegion,
                            m.addConstant("fast_rate", Scalar::r(5.0)));
    }
    {
      model::RegionScope slow(m, ifr.elseRegion);
      rateArms.emplace_back(ifr.elseRegion,
                            m.addConstant("slow_rate", Scalar::r(2.0)));
    }
    auto rate = m.addMerge("rate", rateArms, Scalar::r(0.0));
    auto next = m.addSum("energy_next", {energy, rate}, "++");
    auto clamped = m.addSaturation("energy_sat", next, 0.0, 120.0);
    m.addDataStoreWrite("energy_w", energyStore, clamped);
  }

  m.addOutport("mode", mode);
  m.addOutport("energy", energy);
  return m;
}

}  // namespace

int main() {
  auto m = buildCharger();
  const auto problems = m.validate();
  if (!problems.empty()) {
    std::printf("validation failed: %s\n", problems.front().c_str());
    return 1;
  }
  const auto cm = compile::compile(m);

  // A hand-written suite: plug in and charge for a while.
  coverage::CoverageTracker cov(cm);
  sim::Simulator sim(cm);
  for (int i = 0; i < 30; ++i) {
    (void)sim.step({Scalar::b(true), Scalar::r(12.0), Scalar::r(25.0)}, &cov);
  }
  std::printf("Hand-written suite (30 normal charging steps):\n%s\n",
              cov.report().c_str());

  // Let STCG fill the gaps.
  gen::GenOptions opt;
  opt.budgetMillis = 2000;
  opt.seed = 3;
  gen::StcgGenerator stcg;
  const auto res = stcg.generate(cm, opt);
  const auto replay = gen::replaySuite(cm, res.tests);
  std::printf("After STCG generation:\n%s\n", replay.report().c_str());
  std::printf("STCG added %zu test cases; branches the hand suite missed "
              "(fault entry, full battery,\nslow-rate region, unplug paths) "
              "are now covered.\n",
              res.tests.size());
  return 0;
}
