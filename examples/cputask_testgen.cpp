// CPUTask walkthrough: the paper's flagship model (Fig. 1).
//
//   $ ./build/examples/cputask_testgen [budget_ms]
//
// Generates tests for the AutoSAR task-queue model with STCG and the
// random baseline, contrasts their coverage, shows an "add then delete"
// test case that constraint solving alone cannot produce in one shot, and
// writes the STCG suite to cputask_tests.txt (paper section IV's text
// export).
#include <cstdio>
#include <cstdlib>

#include "baselines/simcotest_like.h"
#include "benchmodels/benchmodels.h"
#include "compile/compiler.h"
#include "sim/simulator.h"
#include "stcg/export.h"
#include "stcg/stcg_generator.h"

using namespace stcg;

int main(int argc, char** argv) {
  const auto cm = compile::compile(bench::buildCpuTask());
  gen::GenOptions opt;
  opt.budgetMillis = argc > 1 ? std::atoll(argv[1]) : 3000;
  opt.seed = 7;

  std::printf("CPUTask: %zu branches, %d conditions\n\n",
              cm.branches.size(), cm.conditionCount());

  gen::StcgGenerator stcg;
  const auto stcgRes = stcg.generate(cm, opt);
  gen::SimCoTestLikeGenerator random;
  const auto randRes = random.generate(cm, opt);

  std::printf("%-15s %9s %10s %7s %7s\n", "Tool", "Decision", "Condition",
              "MCDC", "#tests");
  for (const auto* r : {&stcgRes, &randRes}) {
    std::printf("%-15s %8.1f%% %9.1f%% %6.1f%% %7zu\n", r->toolName.c_str(),
                r->coverage.decision * 100, r->coverage.condition * 100,
                r->coverage.mcdc * 100, r->tests.size());
  }

  // Find a solved test case that adds a task and then operates on it by id
  // — the "add data first and then modify data" sequence of the paper's
  // introduction.
  for (const auto& t : stcgRes.tests) {
    if (t.steps.size() < 2 || t.origin != gen::TestOrigin::kSolved) continue;
    const auto opOf = [](const sim::InputVector& in) {
      return in[0].toInt();
    };
    if (opOf(t.steps.front()) == 0 && opOf(t.steps.back()) != 0) {
      std::printf("\n'Add first, then operate' test case (goal %s):\n",
                  t.goalLabel.c_str());
      for (std::size_t s = 0; s < t.steps.size(); ++s) {
        std::printf("  step %zu: %s\n", s,
                    sim::formatInput(cm, t.steps[s]).c_str());
      }
      // Replay it to show the outcome.
      sim::Simulator sim(cm);
      for (const auto& step : t.steps) (void)sim.step(step, nullptr);
      std::printf("  final result output: %s\n",
                  sim.lastOutputs()[0].toString().c_str());
      break;
    }
  }

  if (gen::writeTestSuite("cputask_tests.txt", cm, stcgRes.tests)) {
    std::printf("\nWrote %zu test cases to cputask_tests.txt\n",
                stcgRes.tests.size());
  }
  return 0;
}
