// Dead-logic audit: the paper's Discussion-section workflow, automated.
//
//   $ ./build/examples/dead_logic_audit
//
// The paper reports that some branches "could not be triggered even after
// a long solving time and random execution", later found to be
// "perpetually false" — e.g. LEDLC's Switch-Case default arm — and
// suggests verifying unreachable branches formally. This example runs the
// interval-reachability + solver-backed dead-branch analysis over every
// benchmark model and shows the solver time STCG saves when told to skip
// the proven-dead goals.
#include <cstdio>

#include "analysis/reachability.h"
#include "benchmodels/benchmodels.h"
#include "compile/compiler.h"
#include "stcg/stcg_generator.h"

using namespace stcg;

int main() {
  std::printf("%-12s %9s %10s %12s\n", "Model", "branches", "dead",
              "invariant");
  for (const auto& info : bench::allBenchModels()) {
    const auto cm = compile::compile(info.build());
    const auto report = analysis::findDeadBranches(cm);
    std::printf("%-12s %9zu %10zu %12s\n", info.name.c_str(),
                cm.branches.size(), report.deadBranches.size(),
                report.invariant.converged ? "converged" : "widened");
    for (const int b : report.deadBranches) {
      const auto& br = cm.branches[static_cast<std::size_t>(b)];
      std::printf(
          "    dead: %s : %s\n",
          cm.decisions[static_cast<std::size_t>(br.decision)].name.c_str(),
          br.label.c_str());
    }
  }

  // Quantify the waste the paper describes: run STCG on LEDLC with and
  // without pruning, under the same budget and seed.
  std::printf("\nSTCG on LEDLC, with and without dead-goal pruning:\n");
  const auto cm = compile::compile(bench::buildLedlc());
  for (const bool prune : {false, true}) {
    gen::GenOptions opt;
    opt.budgetMillis = 2000;
    opt.seed = 4;
    opt.pruneProvablyDead = prune;
    gen::StcgGenerator g;
    const auto res = g.generate(cm, opt);
    std::printf(
        "  prune=%-5s DC=%5.1f%% solveCalls=%5d (sat %4d / unsat %4d) "
        "pruned=%d\n",
        prune ? "on" : "off", res.coverage.decision * 100,
        res.stats.solveCalls, res.stats.solveSat, res.stats.solveUnsat,
        res.stats.goalsPruned);
  }
  std::printf(
      "\nWithout pruning, STCG re-attempts the dead default arm on every\n"
      "state-tree node (the paper: \"STCG performs multiple solving for\n"
      "this type of branch, resulting in a lot of wasted time\").\n");
  return 0;
}
