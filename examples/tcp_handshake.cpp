// TCP handshake exploration: watch STCG discover the three-way handshake.
//
//   $ ./build/examples/tcp_handshake
//
// The TCP model's Established branch requires pkt_ack == snd_nxt — an
// equality against a value the endpoint committed to in an earlier step.
// Random inputs hit it with probability ~1/4096 per attempt *after*
// stumbling into SynRcvd; STCG reads snd_nxt from the state-tree node and
// solves the equality instantly. This example prints the discovered
// handshake sequence and the per-state solver story.
#include <cstdio>
#include <string>

#include "benchmodels/benchmodels.h"
#include "compile/compiler.h"
#include "sim/simulator.h"
#include "stcg/stcg_generator.h"

using namespace stcg;

namespace {
const char* kStateNames[] = {"Closed",   "Listen",   "SynSent", "SynRcvd",
                             "Established", "FinWait1", "FinWait2",
                             "CloseWait", "LastAck",  "Closing", "TimeWait"};
}

int main() {
  const auto cm = compile::compile(bench::buildTcp());
  gen::GenOptions opt;
  opt.budgetMillis = 4000;
  opt.seed = 11;

  gen::StcgGenerator stcg;
  const auto res = stcg.generate(cm, opt);
  std::printf("STCG on TCP: DC=%.1f%% CC=%.1f%% MCDC=%.1f%% (%zu tests)\n\n",
              res.coverage.decision * 100, res.coverage.condition * 100,
              res.coverage.mcdc * 100, res.tests.size());

  // Find the test case that reaches Established via the passive-open
  // handshake and replay it, narrating the connection state.
  for (const auto& t : res.tests) {
    if (t.goalLabel.find("handshake_done") == std::string::npos) continue;
    std::printf("Handshake test case (%s), %zu steps:\n", t.goalLabel.c_str(),
                t.steps.size());
    sim::Simulator sim(cm);
    for (std::size_t s = 0; s < t.steps.size(); ++s) {
      (void)sim.step(t.steps[s], nullptr);
      const auto state = sim.lastOutputs()[0].toInt();
      std::printf("  step %zu: %s\n           -> %s (snd_nxt=%lld, "
                  "rcv_nxt=%lld)\n",
                  s, sim::formatInput(cm, t.steps[s]).c_str(),
                  state >= 0 && state <= 10
                      ? kStateNames[state]
                      : "?",
                  static_cast<long long>(sim.lastOutputs()[1].toInt()),
                  static_cast<long long>(sim.lastOutputs()[2].toInt()));
    }
    break;
  }

  std::printf("\nSolver effort: %d calls, %d SAT, %d UNSAT, %d unknown; "
              "state tree grew to %d nodes.\n",
              res.stats.solveCalls, res.stats.solveSat, res.stats.solveUnsat,
              res.stats.solveUnknown, res.stats.treeNodes);
  std::printf(
      "The ack==snd_nxt guards were solved as trivial equalities once the\n"
      "state tree held SynRcvd/SynSent nodes — the paper's TCP observation.\n");
  return 0;
}
