# Empty dependencies file for stcg_cli.
# This may be replaced when dependencies are built.
