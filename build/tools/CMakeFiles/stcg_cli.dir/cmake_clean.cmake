file(REMOVE_RECURSE
  "CMakeFiles/stcg_cli.dir/stcg_cli.cpp.o"
  "CMakeFiles/stcg_cli.dir/stcg_cli.cpp.o.d"
  "stcg_cli"
  "stcg_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stcg_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
