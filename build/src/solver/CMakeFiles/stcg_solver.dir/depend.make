# Empty dependencies file for stcg_solver.
# This may be replaced when dependencies are built.
