file(REMOVE_RECURSE
  "libstcg_solver.a"
)
