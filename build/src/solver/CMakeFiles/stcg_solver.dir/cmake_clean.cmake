file(REMOVE_RECURSE
  "CMakeFiles/stcg_solver.dir/local_search.cpp.o"
  "CMakeFiles/stcg_solver.dir/local_search.cpp.o.d"
  "CMakeFiles/stcg_solver.dir/solver.cpp.o"
  "CMakeFiles/stcg_solver.dir/solver.cpp.o.d"
  "libstcg_solver.a"
  "libstcg_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stcg_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
