# Empty dependencies file for stcg_core.
# This may be replaced when dependencies are built.
