file(REMOVE_RECURSE
  "CMakeFiles/stcg_core.dir/export.cpp.o"
  "CMakeFiles/stcg_core.dir/export.cpp.o.d"
  "CMakeFiles/stcg_core.dir/state_tree.cpp.o"
  "CMakeFiles/stcg_core.dir/state_tree.cpp.o.d"
  "CMakeFiles/stcg_core.dir/stcg_generator.cpp.o"
  "CMakeFiles/stcg_core.dir/stcg_generator.cpp.o.d"
  "CMakeFiles/stcg_core.dir/testgen.cpp.o"
  "CMakeFiles/stcg_core.dir/testgen.cpp.o.d"
  "libstcg_core.a"
  "libstcg_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stcg_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
