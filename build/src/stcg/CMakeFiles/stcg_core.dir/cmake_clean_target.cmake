file(REMOVE_RECURSE
  "libstcg_core.a"
)
