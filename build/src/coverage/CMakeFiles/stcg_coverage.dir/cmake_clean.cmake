file(REMOVE_RECURSE
  "CMakeFiles/stcg_coverage.dir/coverage.cpp.o"
  "CMakeFiles/stcg_coverage.dir/coverage.cpp.o.d"
  "libstcg_coverage.a"
  "libstcg_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stcg_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
