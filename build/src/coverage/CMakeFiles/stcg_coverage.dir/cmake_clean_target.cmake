file(REMOVE_RECURSE
  "libstcg_coverage.a"
)
