# Empty dependencies file for stcg_coverage.
# This may be replaced when dependencies are built.
