
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/benchmodels/afc.cpp" "src/benchmodels/CMakeFiles/stcg_benchmodels.dir/afc.cpp.o" "gcc" "src/benchmodels/CMakeFiles/stcg_benchmodels.dir/afc.cpp.o.d"
  "/root/repo/src/benchmodels/cputask.cpp" "src/benchmodels/CMakeFiles/stcg_benchmodels.dir/cputask.cpp.o" "gcc" "src/benchmodels/CMakeFiles/stcg_benchmodels.dir/cputask.cpp.o.d"
  "/root/repo/src/benchmodels/helpers.cpp" "src/benchmodels/CMakeFiles/stcg_benchmodels.dir/helpers.cpp.o" "gcc" "src/benchmodels/CMakeFiles/stcg_benchmodels.dir/helpers.cpp.o.d"
  "/root/repo/src/benchmodels/lanswitch.cpp" "src/benchmodels/CMakeFiles/stcg_benchmodels.dir/lanswitch.cpp.o" "gcc" "src/benchmodels/CMakeFiles/stcg_benchmodels.dir/lanswitch.cpp.o.d"
  "/root/repo/src/benchmodels/ledlc.cpp" "src/benchmodels/CMakeFiles/stcg_benchmodels.dir/ledlc.cpp.o" "gcc" "src/benchmodels/CMakeFiles/stcg_benchmodels.dir/ledlc.cpp.o.d"
  "/root/repo/src/benchmodels/nicprotocol.cpp" "src/benchmodels/CMakeFiles/stcg_benchmodels.dir/nicprotocol.cpp.o" "gcc" "src/benchmodels/CMakeFiles/stcg_benchmodels.dir/nicprotocol.cpp.o.d"
  "/root/repo/src/benchmodels/registry.cpp" "src/benchmodels/CMakeFiles/stcg_benchmodels.dir/registry.cpp.o" "gcc" "src/benchmodels/CMakeFiles/stcg_benchmodels.dir/registry.cpp.o.d"
  "/root/repo/src/benchmodels/tcp.cpp" "src/benchmodels/CMakeFiles/stcg_benchmodels.dir/tcp.cpp.o" "gcc" "src/benchmodels/CMakeFiles/stcg_benchmodels.dir/tcp.cpp.o.d"
  "/root/repo/src/benchmodels/twc.cpp" "src/benchmodels/CMakeFiles/stcg_benchmodels.dir/twc.cpp.o" "gcc" "src/benchmodels/CMakeFiles/stcg_benchmodels.dir/twc.cpp.o.d"
  "/root/repo/src/benchmodels/utpc.cpp" "src/benchmodels/CMakeFiles/stcg_benchmodels.dir/utpc.cpp.o" "gcc" "src/benchmodels/CMakeFiles/stcg_benchmodels.dir/utpc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/stcg_model.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/stcg_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/stcg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
