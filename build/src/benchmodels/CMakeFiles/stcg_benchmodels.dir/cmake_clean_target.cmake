file(REMOVE_RECURSE
  "libstcg_benchmodels.a"
)
