# Empty dependencies file for stcg_benchmodels.
# This may be replaced when dependencies are built.
