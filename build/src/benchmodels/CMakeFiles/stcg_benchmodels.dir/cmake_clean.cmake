file(REMOVE_RECURSE
  "CMakeFiles/stcg_benchmodels.dir/afc.cpp.o"
  "CMakeFiles/stcg_benchmodels.dir/afc.cpp.o.d"
  "CMakeFiles/stcg_benchmodels.dir/cputask.cpp.o"
  "CMakeFiles/stcg_benchmodels.dir/cputask.cpp.o.d"
  "CMakeFiles/stcg_benchmodels.dir/helpers.cpp.o"
  "CMakeFiles/stcg_benchmodels.dir/helpers.cpp.o.d"
  "CMakeFiles/stcg_benchmodels.dir/lanswitch.cpp.o"
  "CMakeFiles/stcg_benchmodels.dir/lanswitch.cpp.o.d"
  "CMakeFiles/stcg_benchmodels.dir/ledlc.cpp.o"
  "CMakeFiles/stcg_benchmodels.dir/ledlc.cpp.o.d"
  "CMakeFiles/stcg_benchmodels.dir/nicprotocol.cpp.o"
  "CMakeFiles/stcg_benchmodels.dir/nicprotocol.cpp.o.d"
  "CMakeFiles/stcg_benchmodels.dir/registry.cpp.o"
  "CMakeFiles/stcg_benchmodels.dir/registry.cpp.o.d"
  "CMakeFiles/stcg_benchmodels.dir/tcp.cpp.o"
  "CMakeFiles/stcg_benchmodels.dir/tcp.cpp.o.d"
  "CMakeFiles/stcg_benchmodels.dir/twc.cpp.o"
  "CMakeFiles/stcg_benchmodels.dir/twc.cpp.o.d"
  "CMakeFiles/stcg_benchmodels.dir/utpc.cpp.o"
  "CMakeFiles/stcg_benchmodels.dir/utpc.cpp.o.d"
  "libstcg_benchmodels.a"
  "libstcg_benchmodels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stcg_benchmodels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
