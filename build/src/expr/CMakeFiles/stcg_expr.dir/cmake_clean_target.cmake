file(REMOVE_RECURSE
  "libstcg_expr.a"
)
