file(REMOVE_RECURSE
  "CMakeFiles/stcg_expr.dir/atoms.cpp.o"
  "CMakeFiles/stcg_expr.dir/atoms.cpp.o.d"
  "CMakeFiles/stcg_expr.dir/builder.cpp.o"
  "CMakeFiles/stcg_expr.dir/builder.cpp.o.d"
  "CMakeFiles/stcg_expr.dir/eval.cpp.o"
  "CMakeFiles/stcg_expr.dir/eval.cpp.o.d"
  "CMakeFiles/stcg_expr.dir/expr.cpp.o"
  "CMakeFiles/stcg_expr.dir/expr.cpp.o.d"
  "CMakeFiles/stcg_expr.dir/scalar.cpp.o"
  "CMakeFiles/stcg_expr.dir/scalar.cpp.o.d"
  "CMakeFiles/stcg_expr.dir/sexpr.cpp.o"
  "CMakeFiles/stcg_expr.dir/sexpr.cpp.o.d"
  "CMakeFiles/stcg_expr.dir/subst.cpp.o"
  "CMakeFiles/stcg_expr.dir/subst.cpp.o.d"
  "libstcg_expr.a"
  "libstcg_expr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stcg_expr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
