
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/expr/atoms.cpp" "src/expr/CMakeFiles/stcg_expr.dir/atoms.cpp.o" "gcc" "src/expr/CMakeFiles/stcg_expr.dir/atoms.cpp.o.d"
  "/root/repo/src/expr/builder.cpp" "src/expr/CMakeFiles/stcg_expr.dir/builder.cpp.o" "gcc" "src/expr/CMakeFiles/stcg_expr.dir/builder.cpp.o.d"
  "/root/repo/src/expr/eval.cpp" "src/expr/CMakeFiles/stcg_expr.dir/eval.cpp.o" "gcc" "src/expr/CMakeFiles/stcg_expr.dir/eval.cpp.o.d"
  "/root/repo/src/expr/expr.cpp" "src/expr/CMakeFiles/stcg_expr.dir/expr.cpp.o" "gcc" "src/expr/CMakeFiles/stcg_expr.dir/expr.cpp.o.d"
  "/root/repo/src/expr/scalar.cpp" "src/expr/CMakeFiles/stcg_expr.dir/scalar.cpp.o" "gcc" "src/expr/CMakeFiles/stcg_expr.dir/scalar.cpp.o.d"
  "/root/repo/src/expr/sexpr.cpp" "src/expr/CMakeFiles/stcg_expr.dir/sexpr.cpp.o" "gcc" "src/expr/CMakeFiles/stcg_expr.dir/sexpr.cpp.o.d"
  "/root/repo/src/expr/subst.cpp" "src/expr/CMakeFiles/stcg_expr.dir/subst.cpp.o" "gcc" "src/expr/CMakeFiles/stcg_expr.dir/subst.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/stcg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
