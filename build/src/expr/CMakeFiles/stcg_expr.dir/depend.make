# Empty dependencies file for stcg_expr.
# This may be replaced when dependencies are built.
