
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compile/compiled_model.cpp" "src/compile/CMakeFiles/stcg_compile.dir/compiled_model.cpp.o" "gcc" "src/compile/CMakeFiles/stcg_compile.dir/compiled_model.cpp.o.d"
  "/root/repo/src/compile/compiler.cpp" "src/compile/CMakeFiles/stcg_compile.dir/compiler.cpp.o" "gcc" "src/compile/CMakeFiles/stcg_compile.dir/compiler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/stcg_model.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/stcg_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/stcg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
