file(REMOVE_RECURSE
  "CMakeFiles/stcg_compile.dir/compiled_model.cpp.o"
  "CMakeFiles/stcg_compile.dir/compiled_model.cpp.o.d"
  "CMakeFiles/stcg_compile.dir/compiler.cpp.o"
  "CMakeFiles/stcg_compile.dir/compiler.cpp.o.d"
  "libstcg_compile.a"
  "libstcg_compile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stcg_compile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
