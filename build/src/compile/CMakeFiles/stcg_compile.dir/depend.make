# Empty dependencies file for stcg_compile.
# This may be replaced when dependencies are built.
