file(REMOVE_RECURSE
  "libstcg_compile.a"
)
