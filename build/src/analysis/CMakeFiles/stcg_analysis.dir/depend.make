# Empty dependencies file for stcg_analysis.
# This may be replaced when dependencies are built.
