file(REMOVE_RECURSE
  "CMakeFiles/stcg_analysis.dir/interval_eval.cpp.o"
  "CMakeFiles/stcg_analysis.dir/interval_eval.cpp.o.d"
  "CMakeFiles/stcg_analysis.dir/reachability.cpp.o"
  "CMakeFiles/stcg_analysis.dir/reachability.cpp.o.d"
  "libstcg_analysis.a"
  "libstcg_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stcg_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
