file(REMOVE_RECURSE
  "libstcg_analysis.a"
)
