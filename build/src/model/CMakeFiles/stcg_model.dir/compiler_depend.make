# Empty compiler generated dependencies file for stcg_model.
# This may be replaced when dependencies are built.
