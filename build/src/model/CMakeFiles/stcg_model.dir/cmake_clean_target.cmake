file(REMOVE_RECURSE
  "libstcg_model.a"
)
