file(REMOVE_RECURSE
  "CMakeFiles/stcg_model.dir/chart.cpp.o"
  "CMakeFiles/stcg_model.dir/chart.cpp.o.d"
  "CMakeFiles/stcg_model.dir/export.cpp.o"
  "CMakeFiles/stcg_model.dir/export.cpp.o.d"
  "CMakeFiles/stcg_model.dir/model.cpp.o"
  "CMakeFiles/stcg_model.dir/model.cpp.o.d"
  "CMakeFiles/stcg_model.dir/serialize.cpp.o"
  "CMakeFiles/stcg_model.dir/serialize.cpp.o.d"
  "libstcg_model.a"
  "libstcg_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stcg_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
