# Empty compiler generated dependencies file for stcg_sim.
# This may be replaced when dependencies are built.
