file(REMOVE_RECURSE
  "CMakeFiles/stcg_sim.dir/simulator.cpp.o"
  "CMakeFiles/stcg_sim.dir/simulator.cpp.o.d"
  "libstcg_sim.a"
  "libstcg_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stcg_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
