# Empty dependencies file for stcg_sim.
# This may be replaced when dependencies are built.
