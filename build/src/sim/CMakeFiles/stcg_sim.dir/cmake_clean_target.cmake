file(REMOVE_RECURSE
  "libstcg_sim.a"
)
