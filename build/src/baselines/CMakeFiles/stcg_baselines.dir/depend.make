# Empty dependencies file for stcg_baselines.
# This may be replaced when dependencies are built.
