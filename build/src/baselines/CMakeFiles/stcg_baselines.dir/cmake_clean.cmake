file(REMOVE_RECURSE
  "CMakeFiles/stcg_baselines.dir/simcotest_like.cpp.o"
  "CMakeFiles/stcg_baselines.dir/simcotest_like.cpp.o.d"
  "CMakeFiles/stcg_baselines.dir/sldv_like.cpp.o"
  "CMakeFiles/stcg_baselines.dir/sldv_like.cpp.o.d"
  "libstcg_baselines.a"
  "libstcg_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stcg_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
