file(REMOVE_RECURSE
  "libstcg_baselines.a"
)
