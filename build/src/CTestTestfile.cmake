# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("expr")
subdirs("interval")
subdirs("solver")
subdirs("model")
subdirs("compile")
subdirs("coverage")
subdirs("analysis")
subdirs("sim")
subdirs("stcg")
subdirs("baselines")
subdirs("benchmodels")
