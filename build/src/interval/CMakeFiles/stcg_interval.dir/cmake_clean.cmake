file(REMOVE_RECURSE
  "CMakeFiles/stcg_interval.dir/box.cpp.o"
  "CMakeFiles/stcg_interval.dir/box.cpp.o.d"
  "CMakeFiles/stcg_interval.dir/hc4.cpp.o"
  "CMakeFiles/stcg_interval.dir/hc4.cpp.o.d"
  "CMakeFiles/stcg_interval.dir/interval.cpp.o"
  "CMakeFiles/stcg_interval.dir/interval.cpp.o.d"
  "libstcg_interval.a"
  "libstcg_interval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stcg_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
