file(REMOVE_RECURSE
  "libstcg_interval.a"
)
