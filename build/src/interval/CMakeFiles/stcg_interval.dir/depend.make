# Empty dependencies file for stcg_interval.
# This may be replaced when dependencies are built.
