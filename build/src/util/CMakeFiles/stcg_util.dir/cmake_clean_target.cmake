file(REMOVE_RECURSE
  "libstcg_util.a"
)
