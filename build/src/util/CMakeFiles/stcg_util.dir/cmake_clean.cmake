file(REMOVE_RECURSE
  "CMakeFiles/stcg_util.dir/rng.cpp.o"
  "CMakeFiles/stcg_util.dir/rng.cpp.o.d"
  "CMakeFiles/stcg_util.dir/stopwatch.cpp.o"
  "CMakeFiles/stcg_util.dir/stopwatch.cpp.o.d"
  "CMakeFiles/stcg_util.dir/strings.cpp.o"
  "CMakeFiles/stcg_util.dir/strings.cpp.o.d"
  "libstcg_util.a"
  "libstcg_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stcg_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
