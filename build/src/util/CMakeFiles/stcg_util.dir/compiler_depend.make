# Empty compiler generated dependencies file for stcg_util.
# This may be replaced when dependencies are built.
