# Empty compiler generated dependencies file for custom_model_coverage.
# This may be replaced when dependencies are built.
