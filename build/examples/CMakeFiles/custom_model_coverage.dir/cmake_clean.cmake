file(REMOVE_RECURSE
  "CMakeFiles/custom_model_coverage.dir/custom_model_coverage.cpp.o"
  "CMakeFiles/custom_model_coverage.dir/custom_model_coverage.cpp.o.d"
  "custom_model_coverage"
  "custom_model_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_model_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
