file(REMOVE_RECURSE
  "CMakeFiles/dead_logic_audit.dir/dead_logic_audit.cpp.o"
  "CMakeFiles/dead_logic_audit.dir/dead_logic_audit.cpp.o.d"
  "dead_logic_audit"
  "dead_logic_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dead_logic_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
