# Empty compiler generated dependencies file for dead_logic_audit.
# This may be replaced when dependencies are built.
