# Empty dependencies file for cputask_testgen.
# This may be replaced when dependencies are built.
