file(REMOVE_RECURSE
  "CMakeFiles/cputask_testgen.dir/cputask_testgen.cpp.o"
  "CMakeFiles/cputask_testgen.dir/cputask_testgen.cpp.o.d"
  "cputask_testgen"
  "cputask_testgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cputask_testgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
