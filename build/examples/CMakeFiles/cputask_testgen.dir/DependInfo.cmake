
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/cputask_testgen.cpp" "examples/CMakeFiles/cputask_testgen.dir/cputask_testgen.cpp.o" "gcc" "examples/CMakeFiles/cputask_testgen.dir/cputask_testgen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stcg/CMakeFiles/stcg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/stcg_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/benchmodels/CMakeFiles/stcg_benchmodels.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/stcg_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/stcg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/coverage/CMakeFiles/stcg_coverage.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/stcg_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/interval/CMakeFiles/stcg_interval.dir/DependInfo.cmake"
  "/root/repo/build/src/compile/CMakeFiles/stcg_compile.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/stcg_model.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/stcg_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/stcg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
