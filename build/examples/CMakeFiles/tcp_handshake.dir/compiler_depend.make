# Empty compiler generated dependencies file for tcp_handshake.
# This may be replaced when dependencies are built.
