file(REMOVE_RECURSE
  "CMakeFiles/tcp_handshake.dir/tcp_handshake.cpp.o"
  "CMakeFiles/tcp_handshake.dir/tcp_handshake.cpp.o.d"
  "tcp_handshake"
  "tcp_handshake.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_handshake.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
