# Empty compiler generated dependencies file for stcg_tests.
# This may be replaced when dependencies are built.
