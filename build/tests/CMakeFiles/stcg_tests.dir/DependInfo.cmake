
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_analysis.cpp" "tests/CMakeFiles/stcg_tests.dir/test_analysis.cpp.o" "gcc" "tests/CMakeFiles/stcg_tests.dir/test_analysis.cpp.o.d"
  "/root/repo/tests/test_benchmodels.cpp" "tests/CMakeFiles/stcg_tests.dir/test_benchmodels.cpp.o" "gcc" "tests/CMakeFiles/stcg_tests.dir/test_benchmodels.cpp.o.d"
  "/root/repo/tests/test_coverage.cpp" "tests/CMakeFiles/stcg_tests.dir/test_coverage.cpp.o" "gcc" "tests/CMakeFiles/stcg_tests.dir/test_coverage.cpp.o.d"
  "/root/repo/tests/test_expr.cpp" "tests/CMakeFiles/stcg_tests.dir/test_expr.cpp.o" "gcc" "tests/CMakeFiles/stcg_tests.dir/test_expr.cpp.o.d"
  "/root/repo/tests/test_generators.cpp" "tests/CMakeFiles/stcg_tests.dir/test_generators.cpp.o" "gcc" "tests/CMakeFiles/stcg_tests.dir/test_generators.cpp.o.d"
  "/root/repo/tests/test_interval.cpp" "tests/CMakeFiles/stcg_tests.dir/test_interval.cpp.o" "gcc" "tests/CMakeFiles/stcg_tests.dir/test_interval.cpp.o.d"
  "/root/repo/tests/test_introspection.cpp" "tests/CMakeFiles/stcg_tests.dir/test_introspection.cpp.o" "gcc" "tests/CMakeFiles/stcg_tests.dir/test_introspection.cpp.o.d"
  "/root/repo/tests/test_invariant_property.cpp" "tests/CMakeFiles/stcg_tests.dir/test_invariant_property.cpp.o" "gcc" "tests/CMakeFiles/stcg_tests.dir/test_invariant_property.cpp.o.d"
  "/root/repo/tests/test_local_search.cpp" "tests/CMakeFiles/stcg_tests.dir/test_local_search.cpp.o" "gcc" "tests/CMakeFiles/stcg_tests.dir/test_local_search.cpp.o.d"
  "/root/repo/tests/test_model_compile.cpp" "tests/CMakeFiles/stcg_tests.dir/test_model_compile.cpp.o" "gcc" "tests/CMakeFiles/stcg_tests.dir/test_model_compile.cpp.o.d"
  "/root/repo/tests/test_objectives.cpp" "tests/CMakeFiles/stcg_tests.dir/test_objectives.cpp.o" "gcc" "tests/CMakeFiles/stcg_tests.dir/test_objectives.cpp.o.d"
  "/root/repo/tests/test_property.cpp" "tests/CMakeFiles/stcg_tests.dir/test_property.cpp.o" "gcc" "tests/CMakeFiles/stcg_tests.dir/test_property.cpp.o.d"
  "/root/repo/tests/test_serialize.cpp" "tests/CMakeFiles/stcg_tests.dir/test_serialize.cpp.o" "gcc" "tests/CMakeFiles/stcg_tests.dir/test_serialize.cpp.o.d"
  "/root/repo/tests/test_smoke.cpp" "tests/CMakeFiles/stcg_tests.dir/test_smoke.cpp.o" "gcc" "tests/CMakeFiles/stcg_tests.dir/test_smoke.cpp.o.d"
  "/root/repo/tests/test_solver.cpp" "tests/CMakeFiles/stcg_tests.dir/test_solver.cpp.o" "gcc" "tests/CMakeFiles/stcg_tests.dir/test_solver.cpp.o.d"
  "/root/repo/tests/test_statetree.cpp" "tests/CMakeFiles/stcg_tests.dir/test_statetree.cpp.o" "gcc" "tests/CMakeFiles/stcg_tests.dir/test_statetree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stcg/CMakeFiles/stcg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/stcg_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/benchmodels/CMakeFiles/stcg_benchmodels.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/stcg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/coverage/CMakeFiles/stcg_coverage.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/stcg_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/stcg_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/compile/CMakeFiles/stcg_compile.dir/DependInfo.cmake"
  "/root/repo/build/src/interval/CMakeFiles/stcg_interval.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/stcg_model.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/stcg_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/stcg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
