# Empty dependencies file for bench_table1_trace.
# This may be replaced when dependencies are built.
