// Unit tests for the expression core: scalars, builder folding, evaluation,
// substitution, and atomic-condition extraction.
#include <gtest/gtest.h>

#include "expr/atoms.h"
#include "expr/builder.h"
#include "expr/eval.h"
#include "expr/subst.h"

namespace stcg::expr {
namespace {

// ---------- Scalar / Value ----------

TEST(Scalar, TypesAndConversions) {
  EXPECT_EQ(Scalar::b(true).type(), Type::kBool);
  EXPECT_EQ(Scalar::i(3).type(), Type::kInt);
  EXPECT_EQ(Scalar::r(2.5).type(), Type::kReal);

  EXPECT_EQ(Scalar::b(true).toInt(), 1);
  EXPECT_EQ(Scalar::r(2.9).toInt(), 2);   // truncation toward zero
  EXPECT_EQ(Scalar::r(-2.9).toInt(), -2);
  EXPECT_TRUE(Scalar::i(-5).toBool());
  EXPECT_FALSE(Scalar::r(0.0).toBool());
  EXPECT_DOUBLE_EQ(Scalar::i(7).toReal(), 7.0);
}

TEST(Scalar, CastPreservesSemantics) {
  EXPECT_EQ(Scalar::r(3.7).castTo(Type::kInt), Scalar::i(3));
  EXPECT_EQ(Scalar::i(0).castTo(Type::kBool), Scalar::b(false));
  EXPECT_EQ(Scalar::b(true).castTo(Type::kReal), Scalar::r(1.0));
}

TEST(Scalar, EqualityIsTypeSensitive) {
  EXPECT_NE(Scalar::i(1), Scalar::r(1.0));
  EXPECT_EQ(Scalar::i(1), Scalar::i(1));
}

TEST(Value, SplatAndAccess) {
  const Value v = Value::splat(Scalar::i(4), 3);
  EXPECT_EQ(v.width(), 3);
  EXPECT_EQ(v.at(2), Scalar::i(4));
  EXPECT_FALSE(v.isScalar());
  Value w = v;
  w.set(1, Scalar::i(9));
  EXPECT_NE(v, w);
  EXPECT_EQ(w.at(1), Scalar::i(9));
}

TEST(Value, ConstructorCoercesElementTypes) {
  const Value v(Type::kInt, {Scalar::r(2.7), Scalar::b(true)});
  EXPECT_EQ(v.at(0), Scalar::i(2));
  EXPECT_EQ(v.at(1), Scalar::i(1));
}

// ---------- Builder folding ----------

TEST(Builder, ConstantFoldsArithmetic) {
  EXPECT_EQ(addE(cInt(2), cInt(3))->constVal, Scalar::i(5));
  EXPECT_EQ(mulE(cReal(2.0), cReal(4.0))->constVal, Scalar::r(8.0));
  EXPECT_EQ(subE(cInt(2), cReal(0.5))->constVal, Scalar::r(1.5));
  EXPECT_EQ(minE(cInt(2), cInt(7))->constVal, Scalar::i(2));
  EXPECT_EQ(absE(cInt(-4))->constVal, Scalar::i(4));
}

TEST(Builder, GuardedDivisionByZeroYieldsZero) {
  EXPECT_EQ(divE(cInt(5), cInt(0))->constVal, Scalar::i(0));
  EXPECT_EQ(divE(cReal(5.0), cReal(0.0))->constVal, Scalar::r(0.0));
  EXPECT_EQ(modE(cInt(5), cInt(0))->constVal, Scalar::i(0));
}

TEST(Builder, IdentityAndAbsorbingElements) {
  const auto x = mkVar({0, "x", Type::kInt, -10, 10});
  EXPECT_EQ(addE(x, cInt(0)).get(), x.get());
  EXPECT_EQ(mulE(x, cInt(1)).get(), x.get());
  EXPECT_EQ(mulE(x, cInt(0))->constVal, Scalar::i(0));
  const auto b = mkVar({1, "b", Type::kBool, 0, 1});
  EXPECT_EQ(andE(b, cBool(true)).get(), b.get());
  EXPECT_EQ(andE(b, cBool(false))->constVal, Scalar::b(false));
  EXPECT_EQ(orE(b, cBool(false)).get(), b.get());
  EXPECT_EQ(orE(b, cBool(true))->constVal, Scalar::b(true));
  EXPECT_EQ(notE(notE(b)).get(), b.get());
}

TEST(Builder, IteSimplifications) {
  const auto x = mkVar({0, "x", Type::kInt, -10, 10});
  const auto y = mkVar({1, "y", Type::kInt, -10, 10});
  const auto c = mkVar({2, "c", Type::kBool, 0, 1});
  EXPECT_EQ(iteE(cBool(true), x, y).get(), x.get());
  EXPECT_EQ(iteE(cBool(false), x, y).get(), y.get());
  EXPECT_EQ(iteE(c, x, x).get(), x.get());
}

TEST(Builder, TypePromotionIntRealAndBool) {
  const auto i = mkVar({0, "i", Type::kInt, -10, 10});
  const auto r = mkVar({1, "r", Type::kReal, -10, 10});
  const auto b = mkVar({2, "b", Type::kBool, 0, 1});
  EXPECT_EQ(addE(i, r)->type, Type::kReal);
  EXPECT_EQ(addE(i, b)->type, Type::kInt);  // bool promotes to int
  EXPECT_EQ(ltE(i, r)->type, Type::kBool);
}

TEST(Builder, SelectStoreFolding) {
  const auto arr = cArray(Type::kInt, {Scalar::i(10), Scalar::i(20),
                                       Scalar::i(30)});
  EXPECT_EQ(selectE(arr, cInt(1))->constVal, Scalar::i(20));
  // Out-of-range selection clamps.
  EXPECT_EQ(selectE(arr, cInt(9))->constVal, Scalar::i(30));
  EXPECT_EQ(selectE(arr, cInt(-2))->constVal, Scalar::i(10));
  // Constant store folds into a new constant array.
  const auto stored = storeE(arr, cInt(2), cInt(99));
  EXPECT_EQ(stored->op, Op::kConstArray);
  EXPECT_EQ(selectE(stored, cInt(2))->constVal, Scalar::i(99));
}

TEST(Builder, SelectThroughSymbolicStore) {
  const auto x = mkVar({0, "x", Type::kInt, 0, 100});
  const auto arr = cArray(Type::kInt, {Scalar::i(1), Scalar::i(2)});
  // store at known index, select at different known index: bypasses store.
  const auto s = storeE(arr, cInt(0), x);
  EXPECT_EQ(selectE(s, cInt(1))->constVal, Scalar::i(2));
  // select at the stored index returns the stored value.
  EXPECT_EQ(selectE(s, cInt(0)).get(), x.get());
}

TEST(Builder, AndAllOrAll) {
  const auto b = mkVar({0, "b", Type::kBool, 0, 1});
  EXPECT_EQ(andAll({})->constVal, Scalar::b(true));
  EXPECT_EQ(orAll({})->constVal, Scalar::b(false));
  EXPECT_EQ(andAll({b, cBool(true)}).get(), b.get());
}

// ---------- Evaluation ----------

TEST(Eval, BasicEnvLookups) {
  const auto x = mkVar({0, "x", Type::kInt, -100, 100});
  const auto y = mkVar({1, "y", Type::kReal, -100, 100});
  Env env;
  env.set(0, Scalar::i(4));
  env.set(1, Scalar::r(0.5));
  EXPECT_EQ(evaluate(addE(x, y), env), Scalar::r(4.5));
  EXPECT_EQ(evaluate(ltE(x, cInt(5)), env), Scalar::b(true));
}

TEST(Eval, IteShortCircuitsOnConditionValue) {
  const auto c = mkVar({0, "c", Type::kBool, 0, 1});
  const auto e = iteE(c, cInt(1), cInt(2));
  Env env;
  env.set(0, Scalar::b(false));
  EXPECT_EQ(evaluate(e, env), Scalar::i(2));
  env.set(0, Scalar::b(true));
  EXPECT_EQ(evaluate(e, env), Scalar::i(1));
}

TEST(Eval, ArrayEnvBindingAndStoreChain) {
  const auto arr = mkVarArray(0, "a", Type::kInt, 4);
  const auto idx = mkVar({1, "i", Type::kInt, 0, 3});
  const auto val = mkVar({2, "v", Type::kInt, 0, 100});
  const auto expr = selectE(storeE(arr, idx, val), cInt(2));
  Env env;
  env.setArray(0, {Scalar::i(5), Scalar::i(6), Scalar::i(7), Scalar::i(8)});
  env.set(1, Scalar::i(2));
  env.set(2, Scalar::i(42));
  EXPECT_EQ(evaluate(expr, env), Scalar::i(42));
  env.set(1, Scalar::i(0));  // store elsewhere: original element visible
  EXPECT_EQ(evaluate(expr, env), Scalar::i(7));
}

TEST(Eval, OutOfRangeIndexClampsAtRuntime) {
  const auto arr = mkVarArray(0, "a", Type::kInt, 2);
  const auto idx = mkVar({1, "i", Type::kInt, -10, 10});
  Env env;
  env.setArray(0, {Scalar::i(100), Scalar::i(200)});
  env.set(1, Scalar::i(7));
  EXPECT_EQ(evaluate(selectE(arr, idx), env), Scalar::i(200));
  env.set(1, Scalar::i(-3));
  EXPECT_EQ(evaluate(selectE(arr, idx), env), Scalar::i(100));
}

TEST(Eval, SharedSubexpressionsEvaluateOnce) {
  // Build a deep chain of shared nodes: without memoization this would be
  // exponential (2^40 naive evaluations).
  auto x = mkVar({0, "x", Type::kInt, 0, 10});
  ExprPtr e = x;
  for (int i = 0; i < 40; ++i) e = addE(e, e);
  Env env;
  env.set(0, Scalar::i(1));
  EXPECT_EQ(evaluate(e, env).asInt(), std::int64_t{1} << 40);
}

// ---------- Substitution ----------

TEST(Subst, PartialEvalFoldsBoundParts) {
  const auto x = mkVar({0, "x", Type::kInt, 0, 10});
  const auto s = mkVar({1, "state", Type::kInt, 0, 10});
  const auto e = andE(eqE(x, cInt(3)), gtE(s, cInt(5)));
  Env binding;
  binding.set(1, Scalar::i(7));  // state true -> residual is x == 3
  const auto r = substitute(e, binding);
  EXPECT_EQ(r->op, Op::kEq);
  binding.set(1, Scalar::i(2));  // state false -> whole expr false
  const auto r2 = substitute(e, binding);
  ASSERT_EQ(r2->op, Op::kConst);
  EXPECT_FALSE(r2->constVal.toBool());
}

TEST(Subst, ArrayBindingCollapsesDisjunction) {
  // The CPUTask pattern: OR over slots of (valid[i] && id[i] == x).
  const auto valid = mkVarArray(0, "valid", Type::kInt, 3);
  const auto ids = mkVarArray(1, "ids", Type::kInt, 3);
  const auto x = mkVar({2, "x", Type::kInt, 0, 1000});
  std::vector<ExprPtr> terms;
  for (int i = 0; i < 3; ++i) {
    terms.push_back(andE(neE(selectE(valid, cInt(i)), cInt(0)),
                         eqE(selectE(ids, cInt(i)), x)));
  }
  const auto found = orAll(terms);
  Env st;
  st.setArray(0, {Scalar::i(0), Scalar::i(1), Scalar::i(0)});
  st.setArray(1, {Scalar::i(11), Scalar::i(42), Scalar::i(13)});
  const auto residual = substitute(found, st);
  // Only slot 1 is valid: residual must be exactly x == 42.
  ASSERT_EQ(residual->op, Op::kEq);
  Env in;
  in.set(2, Scalar::i(42));
  EXPECT_TRUE(evaluate(residual, in).toBool());
  in.set(2, Scalar::i(41));
  EXPECT_FALSE(evaluate(residual, in).toBool());
}

TEST(Subst, ExprSubstitutionRenamesVariables) {
  const auto x = mkVar({0, "x", Type::kInt, 0, 10});
  const auto y = mkVar({5, "y", Type::kInt, 0, 10});
  const auto e = addE(x, cInt(1));
  std::unordered_map<VarId, ExprPtr> mapping{{0, y}};
  const auto r = substituteExprs(e, mapping);
  const auto vars = collectVars(r);
  ASSERT_EQ(vars.size(), 1u);
  EXPECT_EQ(vars[0], 5);
}

TEST(Subst, ExprSubstitutionComposesStepFunctions) {
  // next = state + in; composing twice from state=0 gives in0 + in1.
  const auto state = mkVar({0, "s", Type::kInt, 0, 100});
  const auto in = mkVar({1, "in", Type::kInt, 0, 100});
  const auto next = addE(state, in);
  const auto in0 = mkVar({10, "in0", Type::kInt, 0, 100});
  const auto in1 = mkVar({11, "in1", Type::kInt, 0, 100});
  std::unordered_map<VarId, ExprPtr> step0{{0, cInt(0)}, {1, in0}};
  const auto s1 = substituteExprs(next, step0);
  std::unordered_map<VarId, ExprPtr> step1{{0, s1}, {1, in1}};
  const auto s2 = substituteExprs(next, step1);
  Env env;
  env.set(10, Scalar::i(3));
  env.set(11, Scalar::i(4));
  EXPECT_EQ(evaluate(s2, env), Scalar::i(7));
}

// ---------- Atoms / variables / misc ----------

TEST(Atoms, ExtractsMaximalBooleanLeaves) {
  const auto a = mkVar({0, "a", Type::kReal, 0, 10});
  const auto b = mkVar({1, "b", Type::kReal, 0, 10});
  const auto en = mkVar({2, "en", Type::kBool, 0, 1});
  const auto e = orE(andE(gtE(a, cReal(3.0)), notE(eqE(b, a))), en);
  const auto atoms = extractAtoms(e);
  ASSERT_EQ(atoms.size(), 3u);
  EXPECT_EQ(atoms[0]->op, Op::kGt);
  EXPECT_EQ(atoms[1]->op, Op::kEq);
  EXPECT_EQ(atoms[2]->op, Op::kVar);
}

TEST(Atoms, DeduplicatesSharedSubtrees) {
  const auto a = mkVar({0, "a", Type::kReal, 0, 10});
  const auto atom = gtE(a, cReal(1.0));
  const auto e = orE(atom, andE(atom, notE(atom)));
  EXPECT_EQ(extractAtoms(e).size(), 1u);
}

TEST(Atoms, ConstantsAreNotConditions) {
  EXPECT_TRUE(extractAtoms(cBool(true)).empty());
}

TEST(ExprMisc, CollectVarsSortedUnique) {
  const auto x = mkVar({3, "x", Type::kInt, 0, 1});
  const auto y = mkVar({1, "y", Type::kInt, 0, 1});
  const auto e = addE(addE(x, y), x);
  const auto vars = collectVars(e);
  ASSERT_EQ(vars.size(), 2u);
  EXPECT_EQ(vars[0], 1);
  EXPECT_EQ(vars[1], 3);
}

TEST(ExprMisc, DagSizeCountsSharedOnce) {
  const auto x = mkVar({0, "x", Type::kInt, 0, 1});
  const auto shared = addE(x, cInt(1));
  const auto e = mulE(shared, shared);
  EXPECT_EQ(dagSize(e), 4u);  // x, 1, add, mul
}

TEST(ExprMisc, ToStringRendersInfix) {
  const auto x = mkVar({0, "x", Type::kInt, 0, 1});
  EXPECT_EQ(addE(x, cInt(2))->toString(), "(x + 2)");
  EXPECT_EQ(notE(castE(x, Type::kBool))->toString(), "!(cast<bool>(x))");
}

}  // namespace
}  // namespace stcg::expr
