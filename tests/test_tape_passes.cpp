// Pass-pipeline and verifier tests.
//
//   - corrupted-tape rejection: each TapeIssueKind is provoked through
//     TapeRewriter on an otherwise-clean tape and must come back as a
//     typed finding (and requireVerifiedTape must throw on errors),
//   - the guarded-zero regression pin: `x / 0` and `x % 0` (int and
//     real) fold away entirely and stay bit-identical to the raw tape,
//     the tree Evaluator and every BatchTapeExecutor lane,
//   - optimizer unit tests: constant folding through the DAG, dead-arm
//     elimination under a constant kIte condition, algebraic copy
//     propagation, slot reuse with exact incremental cone replay,
//   - the acceptance sweep: all eight bench models' sim/interval/distance
//     tapes verify clean raw and optimized, and the pipeline shrinks the
//     sim tape on at least four of the eight.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "analysis/interval_tape.h"
#include "benchmodels/benchmodels.h"
#include "compile/compiler.h"
#include "compile/model_tape.h"
#include "expr/batch_tape.h"
#include "expr/builder.h"
#include "expr/eval.h"
#include "expr/tape.h"
#include "expr/tape_passes.h"
#include "expr/tape_verify.h"
#include "solver/distance_tape.h"
#include "util/rng.h"

#include "fuzz_dag.h"

namespace stcg {
namespace {

using expr::Env;
using expr::ExprPtr;
using expr::Op;
using expr::Scalar;
using expr::SlotRef;
using expr::Tape;
using expr::TapeIssueKind;
using expr::TapeRewriter;
using expr::Type;
using expr::VarInfo;
using fuzz::buildTapePair;
using fuzz::sameScalar;
using fuzz::TapePair;

// ----- Verifier: corrupted-tape rejection ----------------------------------

bool hasKind(const expr::TapeVerifyResult& res, TapeIssueKind k) {
  for (const auto& issue : res.issues) {
    if (issue.kind == k) return true;
  }
  return false;
}

/// A small clean tape to corrupt: two int variables, two dependent
/// temporaries, one constant. code: [add x y, mul add c3].
std::shared_ptr<const Tape> cleanTape() {
  const auto x = expr::mkVar({0, "x", Type::kInt, -10, 10});
  const auto y = expr::mkVar({1, "y", Type::kInt, -10, 10});
  expr::TapeBuilder b;
  (void)b.addRoot(expr::mulE(expr::addE(x, y), expr::cInt(3)));
  return b.finish();
}

TEST(TapeVerify, CleanTapeVerifiesOk) {
  const auto t = cleanTape();
  const auto res = expr::verifyTape(*t);
  EXPECT_TRUE(res.ok()) << res.render();
}

TEST(TapeVerify, RejectsSlotBoundsViolation) {
  Tape t = *cleanTape();
  TapeRewriter(t).code()[0].a = 9999;
  const auto res = expr::verifyTape(t);
  EXPECT_TRUE(res.hasErrors());
  EXPECT_TRUE(hasKind(res, TapeIssueKind::kSlotBounds)) << res.render();
}

TEST(TapeVerify, RejectsUseBeforeDef) {
  Tape t = *cleanTape();
  ASSERT_GE(t.code().size(), 2u);
  // First instruction reads the second's (not-yet-written) destination.
  TapeRewriter rw(t);
  rw.code()[0].b = rw.code()[1].dst;
  const auto res = expr::verifyTape(t);
  EXPECT_TRUE(res.hasErrors());
  EXPECT_TRUE(hasKind(res, TapeIssueKind::kUseBeforeDef)) << res.render();
}

TEST(TapeVerify, RejectsConstantClobber) {
  Tape t = *cleanTape();
  ASSERT_FALSE(t.constScalarSlots().empty());
  TapeRewriter rw(t);
  rw.code()[0].dst = t.constScalarSlots()[0];
  const auto res = expr::verifyTape(t);
  EXPECT_TRUE(res.hasErrors());
  EXPECT_TRUE(hasKind(res, TapeIssueKind::kConstClobbered)) << res.render();
}

TEST(TapeVerify, RejectsTypeMismatch) {
  const auto x = expr::mkVar({0, "x", Type::kInt, -10, 10});
  const auto y = expr::mkVar({1, "y", Type::kInt, -10, 10});
  expr::TapeBuilder b;
  (void)b.addRoot(expr::ltE(x, y));
  Tape t = *b.finish();
  TapeRewriter rw(t);
  ASSERT_EQ(rw.code()[0].op, Op::kLt);
  rw.code()[0].type = Type::kInt;  // comparisons must produce kBool lanes
  const auto res = expr::verifyTape(t);
  EXPECT_TRUE(res.hasErrors());
  EXPECT_TRUE(hasKind(res, TapeIssueKind::kTypeMismatch)) << res.render();
}

TEST(TapeVerify, RejectsUndefinedRoot) {
  Tape t = *cleanTape();
  TapeRewriter rw(t);
  rw.scalarInit().push_back(Scalar::i(0));
  rw.rootSlots().push_back(
      {static_cast<std::int32_t>(t.scalarSlotCount()) - 1, false});
  const auto res = expr::verifyTape(t);
  EXPECT_TRUE(res.hasErrors());
  EXPECT_TRUE(hasKind(res, TapeIssueKind::kRootUndefined)) << res.render();
}

TEST(TapeVerify, RejectsStaleCone) {
  Tape t = *cleanTape();
  TapeRewriter rw(t);
  ASSERT_FALSE(rw.cones().empty());
  ASSERT_FALSE(rw.cones()[0].second.empty());
  rw.cones()[0].second.clear();  // pretend nothing depends on the variable
  const auto res = expr::verifyTape(t);
  EXPECT_TRUE(res.hasErrors());
  EXPECT_TRUE(hasKind(res, TapeIssueKind::kStaleCone)) << res.render();
}

TEST(TapeVerify, RejectsUnsafeSharing) {
  const auto x = expr::mkVar({0, "x", Type::kInt, -10, 10});
  const auto y = expr::mkVar({1, "y", Type::kInt, -10, 10});
  expr::TapeBuilder b;
  (void)b.addRoot(expr::addE(x, x));
  (void)b.addRoot(expr::addE(y, y));
  Tape t = *b.finish();
  TapeRewriter rw(t);
  ASSERT_EQ(rw.code().size(), 2u);
  // Force the y-writer onto the x-writer's slot: the two dependency
  // cones differ, so cone replay of x alone would observe a stale value.
  rw.code()[1].dst = rw.code()[0].dst;
  rw.rootSlots()[1] = {rw.code()[0].dst, false};
  rw.recomputeCones();
  const auto res = expr::verifyTape(t);
  EXPECT_TRUE(res.hasErrors());
  EXPECT_TRUE(hasKind(res, TapeIssueKind::kUnsafeSharing)) << res.render();
}

TEST(TapeVerify, WarnsOnCseDuplicate) {
  Tape t = *cleanTape();
  TapeRewriter rw(t);
  // Re-emit the first instruction verbatim into a fresh slot: a live
  // duplicate the builder's value numbering would have merged.
  rw.scalarInit().push_back(Scalar::i(0));
  expr::TapeInstr dup = rw.code()[0];
  dup.dst = static_cast<std::int32_t>(t.scalarSlotCount()) - 1;
  rw.code().push_back(dup);
  rw.rootSlots().push_back({dup.dst, false});
  rw.recomputeCones();
  const auto res = expr::verifyTape(t);
  EXPECT_FALSE(res.hasErrors()) << res.render();
  EXPECT_TRUE(hasKind(res, TapeIssueKind::kCseDuplicate)) << res.render();
}

TEST(TapeVerify, RequireVerifiedTapeThrowsTypedDiagnostic) {
  Tape t = *cleanTape();
  TapeRewriter(t).code()[0].a = 9999;
  try {
    expr::requireVerifiedTape(t, "corrupted");
    FAIL() << "expected EvalError";
  } catch (const expr::EvalError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("corrupted"), std::string::npos) << what;
    EXPECT_NE(what.find("tape-"), std::string::npos)
        << "message must carry the stable check id: " << what;
  }
}

// ----- Regression pin: guarded div/mod by a constant zero ------------------

TEST(TapePasses, DivModByConstantZeroFoldsToGuardedZero) {
  const VarInfo xi{0, "x", Type::kInt, -10, 10};
  const VarInfo ri{1, "r", Type::kReal, -100, 100};
  const auto x = expr::mkVar(xi);
  const auto r = expr::mkVar(ri);
  const std::vector<ExprPtr> roots = {
      expr::divE(x, expr::cInt(0)),    expr::modE(x, expr::cInt(0)),
      expr::divE(r, expr::cReal(0.0)), expr::modE(r, expr::cReal(0.0)),
      expr::divE(x, expr::cReal(0.0)),  // int/real promotes to real
  };
  const TapePair p = buildTapePair(roots);

  // The guarded instructions must be gone, not merely bypassed.
  for (const auto& in : p.optimized->code()) {
    EXPECT_NE(in.op, Op::kDiv);
    EXPECT_NE(in.op, Op::kMod);
  }
  EXPECT_TRUE(expr::verifyTape(*p.optimized).ok());

  Env env;
  env.set(0, Scalar::i(7));
  env.set(1, Scalar::r(3.5));
  expr::TapeExecutor raw(p.raw), opt(p.optimized);
  raw.bindEnv(env);
  raw.run();
  opt.bindEnv(env);
  opt.run();
  expr::Evaluator tree(env);
  for (std::size_t i = 0; i < roots.size(); ++i) {
    const Scalar expected = tree.evalScalar(roots[i]);
    EXPECT_TRUE(sameScalar(expected, raw.scalar(p.rawSlots[i]))) << i;
    EXPECT_TRUE(sameScalar(expected, opt.scalar(p.optSlots[i]))) << i;
  }

  // Per-lane batch execution of the optimized tape agrees too.
  const int kLanes = 4;
  expr::BatchTapeExecutor batch(p.optimized, kLanes);
  for (int lane = 0; lane < kLanes; ++lane) {
    batch.setVar(lane, 0, Scalar::i(lane - 2));
    batch.setVar(lane, 1, Scalar::r(0.25 * lane - 1.0));
  }
  batch.run();
  for (int lane = 0; lane < kLanes; ++lane) {
    Env laneEnv;
    laneEnv.set(0, Scalar::i(lane - 2));
    laneEnv.set(1, Scalar::r(0.25 * lane - 1.0));
    expr::Evaluator laneTree(laneEnv);
    for (std::size_t i = 0; i < roots.size(); ++i) {
      EXPECT_TRUE(sameScalar(laneTree.evalScalar(roots[i]),
                             batch.scalar(p.optSlots[i], lane)))
          << "lane " << lane << " root " << i;
    }
  }
}

// ----- Optimizer unit tests -------------------------------------------------

TEST(TapePasses, ConstantsPropagateThroughTheDag) {
  // The expression builder already folds all-constant subtrees, so the
  // tape-level pipeline sees constants only where its own folds expose
  // them. x/0 is the seed (the builder keeps non-const numerators): it
  // folds to the guarded 0, which turns (x/0) + 3 all-constant, which
  // folds to 3 — the whole tape empties.
  const auto x = expr::mkVar({0, "x", Type::kInt, -10, 10});
  const TapePair p =
      buildTapePair({expr::addE(expr::divE(x, expr::cInt(0)), expr::cInt(3))});
  bool rawHasDiv = false;
  for (const auto& in : p.raw->code()) rawHasDiv |= in.op == Op::kDiv;
  ASSERT_TRUE(rawHasDiv) << "precondition: the builder must not fold x/0";
  EXPECT_TRUE(p.optimized->code().empty());
  EXPECT_GE(p.stats.constantsFolded, 2u);
  expr::TapeExecutor ex(p.optimized);
  ex.setVar(0, Scalar::i(4));
  ex.run();
  EXPECT_TRUE(sameScalar(ex.scalar(p.optSlots[0]), Scalar::i(3)));
}

TEST(TapePasses, ConstantConditionIteKillsTheDeadArm) {
  const auto x = expr::mkVar({0, "x", Type::kInt, -10, 10});
  const auto y = expr::mkVar({1, "y", Type::kInt, -10, 10});
  // The condition (x/0 == 0) is non-constant to the expression builder
  // but folds to true on the tape, so the kIte copies its then-arm
  // through and the untaken x*y becomes dead.
  const auto cond = expr::eqE(expr::divE(x, expr::cInt(0)), expr::cInt(0));
  const TapePair p =
      buildTapePair({expr::iteE(cond, expr::addE(x, y), expr::mulE(x, y))});
  bool rawHasIte = false;
  for (const auto& in : p.raw->code()) rawHasIte |= in.op == Op::kIte;
  ASSERT_TRUE(rawHasIte) << "precondition: the builder must emit the kIte";
  for (const auto& in : p.optimized->code()) {
    EXPECT_NE(in.op, Op::kIte);
    EXPECT_NE(in.op, Op::kMul) << "untaken arm must be eliminated";
  }
  EXPECT_GE(p.stats.deadRemoved, 1u);
  expr::TapeExecutor ex(p.optimized);
  ex.setVar(0, Scalar::i(4));
  ex.setVar(1, Scalar::i(9));
  ex.run();
  EXPECT_TRUE(sameScalar(ex.scalar(p.optSlots[0]), Scalar::i(13)));
}

TEST(TapePasses, AlgebraicIdentitiesPropagateTheSource) {
  const auto x = expr::mkVar({0, "x", Type::kInt, -10, 10});
  // x + 0 and x * 1 both collapse onto x's own slot: no code remains.
  const TapePair p = buildTapePair(
      {expr::addE(x, expr::cInt(0)), expr::mulE(x, expr::cInt(1))});
  EXPECT_TRUE(p.optimized->code().empty())
      << p.optimized->code().size() << " instrs remain";
  EXPECT_EQ(p.optSlots[0].slot, p.optSlots[1].slot);
  expr::TapeExecutor ex(p.optimized);
  ex.setVar(0, Scalar::i(-6));
  ex.run();
  EXPECT_TRUE(sameScalar(ex.scalar(p.optSlots[0]), Scalar::i(-6)));
}

TEST(TapePasses, SlotReuseShrinksFrameAndKeepsConeReplayExact) {
  const auto x = expr::mkVar({0, "x", Type::kInt, -10, 10});
  const auto y = expr::mkVar({1, "y", Type::kInt, -10, 10});
  // A long chain over {x, y}: every link shares one dependency class, so
  // the linear scan can collapse the dead links onto few physical slots.
  ExprPtr e = expr::addE(x, y);
  for (int i = 0; i < 12; ++i) e = fuzz::clampInt(expr::addE(e, y));
  const TapePair p = buildTapePair({e});
  EXPECT_LT(p.optimized->scalarSlotCount(), p.raw->scalarSlotCount());
  EXPECT_GE(p.stats.slotsReused, 1u);
  EXPECT_TRUE(expr::verifyTape(*p.optimized).ok());

  expr::TapeExecutor raw(p.raw), opt(p.optimized);
  Env env;
  env.set(0, Scalar::i(3));
  env.set(1, Scalar::i(-2));
  raw.bindEnv(env);
  raw.run();
  opt.bindEnv(env);
  opt.run();
  EXPECT_TRUE(sameScalar(raw.scalar(p.rawSlots[0]), opt.scalar(p.optSlots[0])));
  // Incremental replay on the slot-shared tape must track the raw tape.
  for (const std::int64_t v : {5LL, -7LL, 0LL, 9LL}) {
    raw.setVar(1, Scalar::i(v));
    raw.runCone(1);
    opt.setVar(1, Scalar::i(v));
    opt.runCone(1);
    EXPECT_TRUE(
        sameScalar(raw.scalar(p.rawSlots[0]), opt.scalar(p.optSlots[0])))
        << "y = " << v;
  }
}

// ----- Acceptance sweep: the eight bench models -----------------------------

TEST(TapePasses, BenchModelTapesVerifyCleanAndMostlyShrink) {
  int shrank = 0;
  for (const auto& info : bench::allBenchModels()) {
    const auto cm = compile::compile(bench::buildBenchModel(info.name));

    const compile::ModelTape mt = compile::buildModelTape(cm);
    EXPECT_FALSE(expr::verifyTape(*mt.rawTape).hasErrors()) << info.name;
    EXPECT_FALSE(expr::verifyTape(*mt.tape).hasErrors()) << info.name;
    if (mt.passStats.shrank()) ++shrank;

    if (!cm.states.empty()) {
      std::vector<ExprPtr> nextRoots;
      for (const auto& sv : cm.states) nextRoots.push_back(sv.next);
      const auto built = analysis::buildIntervalTape(nextRoots);
      EXPECT_FALSE(expr::verifyTape(*built.rawTape).hasErrors()) << info.name;
      EXPECT_FALSE(expr::verifyTape(*built.tape).hasErrors()) << info.name;
    }

    std::vector<VarInfo> vars;
    for (const auto& in : cm.inputs) vars.push_back(in.info);
    for (const auto& br : cm.branches) {
      try {
        // Construction self-verifies raw+optimized value tapes in debug
        // builds / under STCG_TAPE_VERIFY=1.
        solver::DistanceTape dt(br.pathConstraint, vars);
        EXPECT_GE(dt.passStats().instrsBefore, dt.passStats().instrsAfter)
            << info.name;
      } catch (const expr::EvalError&) {
        // Non-boolean / array goal: the solver skips it too.
      }
    }
  }
  EXPECT_GE(shrank, 4) << "pipeline must shrink at least half the models";
}

}  // namespace
}  // namespace stcg
