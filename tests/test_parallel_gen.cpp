// Parallel generation tests: the determinism contract of the threaded
// state-aware solve loop (same seed => byte-identical suite for any
// --jobs value), the work-stealing pool itself, counter-based RNG
// streams, snapshot-hash dedup, and the typed errors that replaced
// assert-only validity checks (NDEBUG safety).
#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <stdexcept>
#include <vector>

#include "compile/compiler.h"
#include "expr/builder.h"
#include "model/model.h"
#include "solver/local_search.h"
#include "solver/solver.h"
#include "stcg/state_tree.h"
#include "stcg/stcg_generator.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace stcg::gen {
namespace {

using expr::Scalar;
using expr::Type;
using model::Model;

// The same latch model the sequential determinism test uses: its deep
// branch needs a remembered secret, full coverage is reachable, so runs
// terminate on goal completion rather than on the wall clock.
Model makeLatchModel() {
  Model m("Latch");
  auto code = m.addInport("code", Type::kInt, 0, 100000);
  auto arm = m.addInport("arm", Type::kBool, 0, 1);
  auto latch = m.addUnitDelayHole("latched", Scalar::i(-1));
  auto latchNext = m.addSwitch("latch_next", code, arm, latch,
                               model::SwitchCriteria::kNotZero, 0.0);
  m.bindDelayInput(latch, latchNext);
  auto match = m.addRelational("match", model::RelOp::kEq, code, latch);
  auto valid = m.addCompareToConst("valid", latch, model::RelOp::kGe, 0.0);
  auto unlock = m.addLogical("unlock", model::LogicOp::kAnd, {match, valid});
  auto one = m.addConstant("one", Scalar::i(1));
  auto zero = m.addConstant("zero", Scalar::i(0));
  m.addOutport("y", m.addSwitch("out", one, unlock, zero,
                                model::SwitchCriteria::kNotZero, 0.0));
  return m;
}

// ----- ThreadPool ---------------------------------------------------------

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallelFor(kN, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, SingleLaneRunsInlineAndInOrder) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.threadCount(), 1);
  std::vector<std::size_t> order;
  pool.parallelFor(16, [&](std::size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 16u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, ZeroTasksIsANoop) {
  ThreadPool pool(4);
  int calls = 0;
  pool.parallelFor(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, RethrowsTheLowestIndexException) {
  ThreadPool pool(4);
  try {
    pool.parallelFor(64, [&](std::size_t i) {
      if (i == 5 || i == 20) {
        throw std::runtime_error("boom " + std::to_string(i));
      }
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom 5");
  }
}

TEST(ThreadPool, ReusableAfterAnException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallelFor(8, [](std::size_t) { throw std::runtime_error("x"); }),
      std::runtime_error);
  std::atomic<int> sum{0};
  pool.parallelFor(100, [&](std::size_t i) {
    sum.fetch_add(static_cast<int>(i), std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 4950);
}

TEST(ThreadPool, SurvivesManyBatches) {
  // Exercises batch-epoch handover: a straggler from batch k must never
  // claim batch k+1 work with a stale task body.
  ThreadPool pool(3);
  for (int batch = 0; batch < 50; ++batch) {
    std::atomic<int> count{0};
    pool.parallelFor(17, [&](std::size_t) {
      count.fetch_add(1, std::memory_order_relaxed);
    });
    ASSERT_EQ(count.load(), 17) << "batch " << batch;
  }
}

TEST(ThreadPool, HardwareThreadsIsPositive) {
  EXPECT_GE(ThreadPool::hardwareThreads(), 1);
}

// ----- Counter-based RNG streams ------------------------------------------

TEST(Rng, CounterForkIgnoresEnginePosition) {
  Rng a(42);
  Rng b(42);
  // Advance `a` arbitrarily; the counter-based fork must not care.
  for (int i = 0; i < 13; ++i) (void)a.uniformInt(0, 9);
  Rng childA = a.fork(std::uint64_t{7});
  Rng childB = b.fork(std::uint64_t{7});
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(childA.uniformInt(0, 1 << 30), childB.uniformInt(0, 1 << 30));
  }
}

TEST(Rng, DistinctStreamsDiverge) {
  const Rng root(42);
  Rng s1 = root.fork(std::uint64_t{1});
  Rng s2 = root.fork(std::uint64_t{2});
  bool anyDiff = false;
  for (int i = 0; i < 8; ++i) {
    anyDiff |= s1.uniformInt(0, 1 << 30) != s2.uniformInt(0, 1 << 30);
  }
  EXPECT_TRUE(anyDiff);
}

TEST(Rng, ThrowsOnInvalidArgumentsInsteadOfUb) {
  Rng rng(1);
  EXPECT_THROW((void)rng.uniformInt(3, 2), std::invalid_argument);
  EXPECT_THROW((void)rng.index(0), std::invalid_argument);
}

// ----- Saturating integer endpoints (solver NDEBUG fix) -------------------

TEST(Solver, IntegerEndpointsSaturateUnboundedDomains) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const auto [lo, hi] = solver::integerEndpoints(1.0, kInf);
  EXPECT_EQ(lo, 1);
  EXPECT_GT(hi, std::int64_t{1} << 60);  // saturated, not INT64_MIN garbage
  const auto [l2, h2] = solver::integerEndpoints(-kInf, -3.5);
  EXPECT_LT(l2, -(std::int64_t{1} << 60));
  EXPECT_EQ(h2, -4);
}

TEST(Solver, IntegerEndpointsDetectEmptyIntegerInterval) {
  const auto [lo, hi] = solver::integerEndpoints(0.2, 0.8);
  EXPECT_GT(lo, hi);  // no integer in (0.2, 0.8)
}

TEST(Solver, SolvesOverHalfUnboundedIntegerDomain) {
  // Regression: sampling an integer var whose domain includes +inf used
  // to cast inf to int64 (UB) and feed an empty range to the RNG.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const expr::VarInfo v{910001, "n", Type::kInt, 1.0, kInf};
  const auto goal = expr::geE(expr::mkVar(v), expr::cInt(5));
  solver::SolveOptions so;
  so.timeBudgetMillis = 200;
  solver::BoxSolver s(so);
  const auto res = s.solve(goal, {v});
  ASSERT_TRUE(res.sat());
  EXPECT_GE(res.model.get(v.id).toReal(), 5.0);
}

TEST(Solver, NonBooleanGoalThrowsTypedError) {
  solver::BoxSolver box;
  EXPECT_THROW((void)box.solve(expr::cInt(3), {}), expr::EvalError);
  solver::LocalSearchSolver ls;
  EXPECT_THROW((void)ls.solve(expr::cInt(3), {}), expr::EvalError);
}

TEST(Stcg, MissingModelBindingThrowsTypedError) {
  const auto cm = compile::compile(makeLatchModel());
  const expr::Env empty;
  try {
    (void)inputsFromEnv(cm, empty);
    FAIL() << "expected EvalError";
  } catch (const expr::EvalError& e) {
    // Must name the missing input so the failure is debuggable in
    // release builds too.
    EXPECT_NE(std::string(e.what()).find("code"), std::string::npos)
        << e.what();
  }
}

// ----- Snapshot-hash dedup -------------------------------------------------

TEST(StateTree, GlobalDedupSkipsSameStateUnderDifferentNodeId) {
  const sim::StateSnapshot s{expr::Value(Scalar::i(7))};
  StateTree tree(s);
  // A second node with the same state value (the generator normally
  // dedups via findByState, but the cap path can still create one).
  const int dup = tree.addChild(0, {}, s);
  tree.markAttempted(0, 3);
  EXPECT_TRUE(tree.isAttempted(0, 3));
  EXPECT_TRUE(tree.isAttempted(dup, 3))
      << "same state value must share attempt marks";
  EXPECT_FALSE(tree.isAttempted(dup, 4));
  EXPECT_EQ(tree.attemptedPairCount(), 1u);
  tree.markAttempted(dup, 3);  // no-op: the pair is already recorded
  EXPECT_EQ(tree.attemptedPairCount(), 1u);
}

TEST(StateTree, DistinctStatesKeepDistinctAttemptSets) {
  StateTree tree({expr::Value(Scalar::i(1))});
  const int other = tree.addChild(0, {}, {expr::Value(Scalar::i(2))});
  tree.markAttempted(0, 9);
  EXPECT_FALSE(tree.isAttempted(other, 9));
  EXPECT_EQ(tree.attemptedPairCount(), 1u);
}

TEST(SnapshotHash, MatchesOnEqualValueOnly) {
  const sim::StateSnapshot a{expr::Value(Scalar::i(1)),
                             expr::Value(Scalar::i(2))};
  const sim::StateSnapshot b{expr::Value(Scalar::i(1)),
                             expr::Value(Scalar::i(2))};
  const sim::StateSnapshot swapped{expr::Value(Scalar::i(2)),
                                   expr::Value(Scalar::i(1))};
  EXPECT_EQ(sim::snapshotHash(a), sim::snapshotHash(b));
  EXPECT_NE(sim::snapshotHash(a), sim::snapshotHash(swapped));
}

// ----- Determinism across jobs --------------------------------------------

GenResult runLatch(int jobs) {
  const auto cm = compile::compile(makeLatchModel());
  GenOptions opt;
  // Budgets generous enough that runs stop on full coverage, never on the
  // wall clock — the determinism contract assumes non-binding budgets.
  opt.budgetMillis = 30000;
  opt.seed = 77;
  opt.solver.timeBudgetMillis = 1000;
  // Branch goals only: the latch has provably unsatisfiable MCDC pairs
  // (valid=F forces latched=-1 while match needs code==latched, outside
  // code's domain), and a run holding unsatisfiable goals is budget-bound
  // — its iteration counts depend on the wall clock, which the contract
  // excludes.
  opt.includeConditionGoals = false;
  opt.jobs = jobs;
  StcgGenerator g;
  return g.generate(cm, opt);
}

// (a && b) over free boolean inputs: every branch, condition polarity,
// and MCDC pair is satisfiable, so the full-goal run also terminates on
// coverage and the whole GenResult must be reproducible.
GenResult runAndModel(int jobs) {
  model::Model m("and2");
  auto a = m.addInport("a", Type::kBool, 0, 1);
  auto b = m.addInport("b", Type::kBool, 0, 1);
  auto cond = m.addLogical("ab", model::LogicOp::kAnd, {a, b});
  auto one = m.addConstant("one", Scalar::i(1));
  auto zero = m.addConstant("zero", Scalar::i(0));
  m.addOutport("y", m.addSwitch("sw", one, cond, zero,
                                model::SwitchCriteria::kNotZero, 0.0));
  const auto cm = compile::compile(m);
  GenOptions opt;
  opt.budgetMillis = 30000;
  opt.seed = 9;
  opt.solver.timeBudgetMillis = 1000;
  opt.jobs = jobs;
  StcgGenerator g;
  return g.generate(cm, opt);
}

void expectIdentical(const GenResult& a, const GenResult& b,
                     const std::string& what) {
  ASSERT_EQ(a.tests.size(), b.tests.size()) << what;
  for (std::size_t i = 0; i < a.tests.size(); ++i) {
    EXPECT_EQ(a.tests[i].steps, b.tests[i].steps) << what << " test " << i;
    EXPECT_EQ(a.tests[i].origin, b.tests[i].origin) << what << " test " << i;
    EXPECT_EQ(a.tests[i].goalLabel, b.tests[i].goalLabel)
        << what << " test " << i;
  }
  ASSERT_EQ(a.events.size(), b.events.size()) << what;
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].decisionCoverage, b.events[i].decisionCoverage)
        << what << " event " << i;
    EXPECT_EQ(a.events[i].origin, b.events[i].origin)
        << what << " event " << i;
  }
  EXPECT_EQ(a.coverage.decision, b.coverage.decision) << what;
  EXPECT_EQ(a.coverage.condition, b.coverage.condition) << what;
  EXPECT_EQ(a.coverage.mcdc, b.coverage.mcdc) << what;
  EXPECT_EQ(a.coverage.coveredBranches, b.coverage.coveredBranches) << what;
  EXPECT_EQ(a.stats.solveCalls, b.stats.solveCalls) << what;
  EXPECT_EQ(a.stats.solveSat, b.stats.solveSat) << what;
  EXPECT_EQ(a.stats.solveUnsat, b.stats.solveUnsat) << what;
  EXPECT_EQ(a.stats.solveUnknown, b.stats.solveUnknown) << what;
  EXPECT_EQ(a.stats.stepsExecuted, b.stats.stepsExecuted) << what;
  EXPECT_EQ(a.stats.treeNodes, b.stats.treeNodes) << what;
  EXPECT_EQ(a.stats.randomSequences, b.stats.randomSequences) << what;
}

TEST(ParallelGen, SameSuiteForAnyJobsValue) {
  const auto seq = runLatch(1);
  EXPECT_EQ(seq.coverage.decision, 1.0)
      << "latch must reach full coverage for the comparison to be stable";
  expectIdentical(seq, runLatch(2), "jobs=2");
  expectIdentical(seq, runLatch(8), "jobs=8");
}

TEST(ParallelGen, JobsZeroMeansHardwareConcurrencyAndStaysDeterministic) {
  expectIdentical(runLatch(1), runLatch(0), "jobs=0");
}

TEST(ParallelGen, RepeatedThreadedRunsAreIdentical) {
  expectIdentical(runLatch(8), runLatch(8), "jobs=8 repeat");
}

TEST(ParallelGen, FullGoalSetDeterministicAcrossJobs) {
  const auto seq = runAndModel(1);
  EXPECT_EQ(seq.coverage.decision, 1.0);
  EXPECT_EQ(seq.coverage.mcdc, 1.0)
      << "every and2 goal is satisfiable; the run must stop on coverage";
  expectIdentical(seq, runAndModel(2), "and2 jobs=2");
  expectIdentical(seq, runAndModel(8), "and2 jobs=8");
}

}  // namespace
}  // namespace stcg::gen
