// Lint subsystem tests: bench models stay error-free (with the known
// true-positive warnings documented below), seeded defects each trigger
// exactly the expected diagnostic, the generator prunes provably-dead
// goals out of the coverage denominators, JSON rendering is well-formed,
// and the runtime diagnostics (EvalError/SimError) replace the old
// assert-only failure modes.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "benchmodels/benchmodels.h"
#include "compile/compiler.h"
#include "expr/builder.h"
#include "lint/lint.h"
#include "model/model.h"
#include "sim/simulator.h"
#include "stcg/stcg_generator.h"

namespace stcg {
namespace {

using expr::Scalar;
using expr::Type;
using model::Model;

lint::LintResult lintByName(const std::string& name) {
  return lint::lintModel(bench::buildBenchModel(name));
}

// ---------------------------------------------------------------------
// Bench sweep: every Table-II model lints with zero errors. Warnings are
// restricted to the audited true positives:
//   CPUTask / LANSwitch — "array-bounds": scanSlots uses an out-of-range
//     sentinel index (== slot count) when no slot matches, and dataflow
//     evaluates eagerly, so the clamped select genuinely executes.
//   UTPC — "unreachable-branch" on batt_sel's implicit no-arm-active
//     branch (the Switch-Case groups are exhaustive).
//   LEDLC — "unreachable-branch" on duty_by_mode's default arm (the
//     dead arm the paper discusses).
// ---------------------------------------------------------------------

class BenchLint : public ::testing::TestWithParam<std::string> {};

TEST_P(BenchLint, NoErrorsAndOnlyAuditedWarnings) {
  const auto result = lintByName(GetParam());
  EXPECT_EQ(result.sink.errorCount(), 0)
      << result.sink.render() << "bench models must lint clean of errors";
  EXPECT_TRUE(result.compiledChecksRan);

  static const std::set<std::string> auditedWarningChecks = {
      "array-bounds", "unreachable-branch"};
  for (const auto& d : result.sink.diagnostics()) {
    if (d.severity != lint::Severity::kWarning) continue;
    EXPECT_TRUE(auditedWarningChecks.count(d.check) > 0)
        << "unaudited warning [" << d.check << "] at " << d.location << ": "
        << d.message;
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, BenchLint,
                         ::testing::Values("AFC", "CPUTask", "LANSwitch",
                                           "LEDLC", "NICProtocol", "TCP",
                                           "TWC", "UTPC"));

TEST(BenchLint, CleanModelsHaveNoWarnings) {
  for (const std::string name : {"AFC", "TWC", "NICProtocol", "TCP"}) {
    const auto result = lintByName(name);
    EXPECT_EQ(result.sink.warningCount(), 0)
        << name << ":\n" << result.sink.render();
  }
}

TEST(BenchLint, LedlcDeadDefaultArmIsFlagged) {
  const auto result = lintByName("LEDLC");
  EXPECT_GE(result.sink.countFor("unreachable-branch"), 1);
  bool found = false;
  for (const auto& d : result.sink.diagnostics()) {
    if (d.check == "unreachable-branch" &&
        d.location.find("duty_by_mode") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << result.sink.render();
  EXPECT_FALSE(result.exclusions.empty());
}

// ---------------------------------------------------------------------
// Seeded defects: each model plants exactly one defect class and must
// trigger exactly that diagnostic (no cross-talk between checks).
// ---------------------------------------------------------------------

TEST(SeededDefects, UnboundDelayIsAnError) {
  Model m("seeded");
  auto x = m.addInport("x", Type::kInt, -10, 10);
  auto hole = m.addUnitDelayHole("latch", Scalar::i(0));  // never bound
  m.addOutport("y", m.addSum("s", {x, hole}, "++"));
  const auto result = lint::lintModel(m);
  EXPECT_EQ(result.sink.countFor("unbound-delay"), 1)
      << result.sink.render();
  EXPECT_TRUE(result.sink.hasErrors());
  // Errors stop the compiled layer: an unbound delay cannot be lowered.
  EXPECT_FALSE(result.compiledChecksRan);
}

TEST(SeededDefects, StoreReadButNeverWritten) {
  Model m("seeded");
  auto x = m.addInport("x", Type::kInt, -10, 10);
  const int store = m.addDataStore("cfg", Type::kInt, 1, Scalar::i(3));
  auto cfg = m.addDataStoreRead("rd", store);
  m.addOutport("y", m.addSum("s", {x, cfg}, "++"));
  const auto result = lint::lintModel(m);
  EXPECT_EQ(result.sink.countFor("store-never-written"), 1)
      << result.sink.render();
  EXPECT_EQ(result.sink.errorCount(), 0);
}

TEST(SeededDefects, ReachableDivisionByZero) {
  Model m("seeded");
  auto a = m.addInport("a", Type::kReal, -10, 10);
  auto b = m.addInport("b", Type::kReal, -10, 10);  // domain spans zero
  m.addOutport("y", m.addProduct("quot", {a, b}, "*/"));
  const auto result = lint::lintModel(m);
  EXPECT_EQ(result.sink.countFor("div-by-zero"), 1)
      << result.sink.render();
  EXPECT_EQ(result.sink.errorCount(), 0);
}

TEST(SeededDefects, NoDivisionWarningWhenDomainExcludesZero) {
  Model m("seeded");
  auto a = m.addInport("a", Type::kReal, -10, 10);
  auto b = m.addInport("b", Type::kReal, 1, 10);  // bounded away from 0
  m.addOutport("y", m.addProduct("quot", {a, b}, "*/"));
  const auto result = lint::lintModel(m);
  EXPECT_EQ(result.sink.countFor("div-by-zero"), 0)
      << result.sink.render();
}

/// A saturated counter in [0,10] can never exceed 50: the guarded
/// Switch's true arm is provably dead (same shape as the paper's
/// "perpetually false" branches).
Model makeDeadBranchModel() {
  Model m("DeadBranch");
  auto inc = m.addInport("inc", Type::kBool, 0, 1);
  auto count = m.addUnitDelayHole("count", Scalar::i(0));
  auto one = m.addConstant("one", Scalar::i(1));
  auto zero = m.addConstant("zero", Scalar::i(0));
  auto amount = m.addSwitch("amount", one, inc, zero,
                            model::SwitchCriteria::kNotZero, 0.0);
  auto next = m.addSum("next", {count, amount}, "++");
  m.bindDelayInput(count, m.addSaturation("sat", next, 0, 10));
  auto never = m.addCompareToConst("never", count, model::RelOp::kGt, 50.0);
  m.addOutport("y", m.addSwitch("dead", one, never, zero,
                                model::SwitchCriteria::kNotZero, 0.0));
  return m;
}

TEST(SeededDefects, DeadBranchIsFlaggedUnreachable) {
  const auto result = lint::lintModel(makeDeadBranchModel());
  EXPECT_EQ(result.sink.errorCount(), 0) << result.sink.render();
  EXPECT_GE(result.sink.countFor("unreachable-branch"), 1)
      << result.sink.render();
  bool found = false;
  for (const auto& d : result.sink.diagnostics()) {
    if (d.check == "unreachable-branch" &&
        d.location.find("/dead'") != std::string::npos &&
        d.location.find("true") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << result.sink.render();
}

// ---------------------------------------------------------------------
// Generator integration: pruning removes the dead goal from both the
// solve loop and the coverage denominator, so the suite reaches 100% of
// the satisfiable goals.
// ---------------------------------------------------------------------

TEST(Pruning, DeadBranchModelReachesFullCoverageAfterPruning) {
  const auto cm = compile::compile(makeDeadBranchModel());
  gen::GenOptions opt;
  opt.budgetMillis = 2500;
  opt.seed = 7;
  opt.solver.timeBudgetMillis = 20;

  gen::StcgGenerator stcg;
  opt.pruneProvablyDead = false;
  const auto plain = stcg.generate(cm, opt);
  EXPECT_EQ(plain.stats.goalsPruned, 0);
  // The dead arm keeps the unpruned denominator from reaching 100%.
  EXPECT_LT(plain.coverage.decision, 1.0);

  opt.pruneProvablyDead = true;
  const auto pruned = stcg.generate(cm, opt);
  EXPECT_GT(pruned.stats.goalsPruned, 0);
  EXPECT_DOUBLE_EQ(pruned.coverage.decision, 1.0)
      << "all satisfiable decisions must be covered once the dead arm is "
         "excluded";
  EXPECT_GE(pruned.coverage.decision, plain.coverage.decision);
}

// ---------------------------------------------------------------------
// JSON rendering.
// ---------------------------------------------------------------------

TEST(Diagnostics, JsonReportIsWellFormed) {
  lint::DiagnosticSink sink;
  sink.report(lint::Severity::kWarning, "div-by-zero", "output 'y'",
              "denominator [-10, 10] may be zero");
  sink.report(lint::Severity::kError, "invalid-ref", "block \"s\"",
              "line1\nline2");
  sink.sortBySeverity();
  const std::string json = sink.renderJson("M");
  EXPECT_NE(json.find("\"model\": \"M\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"errors\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"warnings\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"check\": \"div-by-zero\""), std::string::npos);
  // Quotes and newlines inside fields must be escaped.
  EXPECT_NE(json.find("block \\\"s\\\""), std::string::npos) << json;
  EXPECT_NE(json.find("line1\\nline2"), std::string::npos) << json;
  // Errors sort before warnings.
  EXPECT_LT(json.find("invalid-ref"), json.find("div-by-zero"));
}

TEST(Diagnostics, RegistryCoversEveryReportedCheckId) {
  std::set<std::string> registered;
  for (const auto& c : lint::allChecks()) registered.insert(c.id);
  for (const std::string name :
       {"AFC", "CPUTask", "LANSwitch", "LEDLC", "NICProtocol", "TCP", "TWC",
        "UTPC"}) {
    const auto result = lintByName(name);
    for (const auto& d : result.sink.diagnostics()) {
      EXPECT_TRUE(registered.count(d.check) > 0)
          << "unregistered check id: " << d.check;
    }
  }
}

// ---------------------------------------------------------------------
// Runtime diagnostics: the evaluator and simulator throw typed errors
// (with the offending element in the message) where they used to assert.
// ---------------------------------------------------------------------

TEST(RuntimeDiagnostics, UnboundVariableThrowsEvalError) {
  const auto v = expr::mkVar({7, "speed", Type::kInt, -10, 10});
  expr::Env env;  // deliberately empty
  try {
    (void)expr::evaluate(v, env);
    FAIL() << "expected EvalError";
  } catch (const expr::EvalError& e) {
    EXPECT_NE(std::string(e.what()).find("speed"), std::string::npos)
        << e.what();
  }
}

TEST(RuntimeDiagnostics, ArrayScalarMisuseThrowsEvalError) {
  expr::Env env;
  env.setArray(3, {Scalar::i(1), Scalar::i(2)});
  expr::Evaluator ev(env);
  const auto arr = expr::mkVarArray(3, "buf", Type::kInt, 2);
  EXPECT_THROW((void)ev.evalScalar(arr), expr::EvalError);
  const auto scalar = expr::cScalar(Scalar::i(1));
  expr::Evaluator ev2(env);
  EXPECT_THROW((void)ev2.evalArray(scalar), expr::EvalError);
}

TEST(RuntimeDiagnostics, SimulatorSizeMismatchesThrowSimError) {
  const auto cm = compile::compile(bench::buildBenchModel("LEDLC"));
  sim::Simulator s(cm);
  try {
    (void)s.step({}, nullptr);  // wrong arity
    FAIL() << "expected SimError";
  } catch (const sim::SimError& e) {
    EXPECT_NE(std::string(e.what()).find("LEDLC"), std::string::npos)
        << e.what();
  }
  EXPECT_THROW(s.restore(sim::StateSnapshot{}), sim::SimError);
}

}  // namespace
}  // namespace stcg
