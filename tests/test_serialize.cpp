// Serialization tests: s-expression round trips, model round trips across
// the whole benchmark suite, and parser error paths.
#include <gtest/gtest.h>

#include "benchmodels/benchmodels.h"
#include "compile/compiler.h"
#include "expr/builder.h"
#include "expr/sexpr.h"
#include "model/serialize.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace stcg {
namespace {

using expr::Scalar;
using expr::Type;

// ---------- S-expressions ----------

TEST(Sexpr, ScalarLiteralsRoundTrip) {
  const auto none = [](const std::string&) -> expr::ExprPtr {
    return nullptr;
  };
  EXPECT_EQ(expr::parseSexpr("(i 42)", none)->constVal, Scalar::i(42));
  EXPECT_EQ(expr::parseSexpr("(b true)", none)->constVal, Scalar::b(true));
  EXPECT_EQ(expr::parseSexpr("(r 2.5)", none)->constVal, Scalar::r(2.5));
}

TEST(Sexpr, CompoundExpressionRoundTrips) {
  const auto x = expr::mkVar({0, "x", Type::kInt, 0, 100});
  const auto y = expr::mkVar({1, "y", Type::kReal, -1, 1});
  const auto e = expr::andE(
      expr::gtE(expr::addE(x, expr::cInt(3)), expr::cInt(10)),
      expr::notE(expr::eqE(y, expr::cReal(0.5))));
  const auto text = expr::toSexpr(e);
  const expr::VarResolver resolve = [&](const std::string& n) {
    if (n == "x") return x;
    if (n == "y") return y;
    return expr::ExprPtr();
  };
  const auto back = expr::parseSexpr(text, resolve);
  // Semantics must match across a sample of points.
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    expr::Env env;
    env.set(0, Scalar::i(rng.uniformInt(0, 100)));
    env.set(1, Scalar::r(rng.uniformReal(-1, 1)));
    EXPECT_EQ(expr::evaluate(e, env), expr::evaluate(back, env));
  }
  // And a second render is stable.
  EXPECT_EQ(expr::toSexpr(back), text);
}

TEST(Sexpr, ArraysAndStores) {
  const auto none = [](const std::string&) -> expr::ExprPtr {
    return nullptr;
  };
  const auto e = expr::parseSexpr("(select (array int 10 20 30) (i 2))", none);
  ASSERT_EQ(e->op, expr::Op::kConst);
  EXPECT_EQ(e->constVal, Scalar::i(30));
}

TEST(Sexpr, Errors) {
  const auto none = [](const std::string&) -> expr::ExprPtr {
    return nullptr;
  };
  EXPECT_THROW((void)expr::parseSexpr("(frobnicate (i 1))", none),
               expr::SexprError);
  EXPECT_THROW((void)expr::parseSexpr("(var unknown)", none),
               expr::SexprError);
  EXPECT_THROW((void)expr::parseSexpr("(+ (i 1))", none), expr::SexprError);
  EXPECT_THROW((void)expr::parseSexpr("(i 1) trailing", none),
               expr::SexprError);
}

// ---------- Model round trips ----------

class SerializeSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(SerializeSweep, RoundTripPreservesStructureAndBehaviour) {
  const auto original = bench::buildBenchModel(GetParam());
  const auto text = model::writeModel(original);
  const auto reparsed = model::parseModel(text);

  // Writer is stable across the round trip.
  EXPECT_EQ(model::writeModel(reparsed), text);

  // Same compiled structure.
  const auto cmA = compile::compile(original);
  const auto cmB = compile::compile(reparsed);
  ASSERT_EQ(cmA.inputs.size(), cmB.inputs.size());
  ASSERT_EQ(cmA.states.size(), cmB.states.size());
  ASSERT_EQ(cmA.branches.size(), cmB.branches.size());
  ASSERT_EQ(cmA.decisions.size(), cmB.decisions.size());
  EXPECT_EQ(cmA.conditionCount(), cmB.conditionCount());
  EXPECT_EQ(cmA.objectives.size(), cmB.objectives.size());

  // Same behaviour on a random input script, including coverage.
  sim::Simulator a(cmA), b(cmB);
  coverage::CoverageTracker covA(cmA), covB(cmB);
  Rng rng(77);
  for (int i = 0; i < 120; ++i) {
    const auto in = sim::randomInput(cmA, rng);
    (void)a.step(in, &covA);
    (void)b.step(in, &covB);
    ASSERT_EQ(a.lastOutputs(), b.lastOutputs()) << GetParam() << " step " << i;
  }
  EXPECT_EQ(covA.coveredBranchCount(), covB.coveredBranchCount());
  EXPECT_EQ(a.snapshot(), b.snapshot());
}

INSTANTIATE_TEST_SUITE_P(AllModels, SerializeSweep,
                         ::testing::Values("CPUTask", "AFC", "TWC",
                                           "NICProtocol", "UTPC", "LANSwitch",
                                           "LEDLC", "TCP"),
                         [](const auto& info) { return info.param; });

TEST(Serialize, FileRoundTrip) {
  const auto m = bench::buildCpuTaskSimplified();
  const std::string path = "/tmp/stcg_model_roundtrip.stcgm";
  ASSERT_TRUE(model::saveModel(path, m));
  const auto back = model::loadModel(path);
  EXPECT_EQ(model::writeModel(back), model::writeModel(m));
}

TEST(Serialize, ObjectivesSurvive) {
  model::Model m("WithObj");
  auto x = m.addInport("x", Type::kInt, 0, 9);
  auto big = m.addCompareToConst("big", x, model::RelOp::kGt, 5.0);
  m.addTestObjective("see_big", big);
  const auto back = model::parseModel(model::writeModel(m));
  const auto cm = compile::compile(back);
  ASSERT_EQ(cm.objectives.size(), 1u);
  EXPECT_EQ(cm.objectives[0].name, "WithObj/see_big");
}

TEST(Serialize, ErrorsOnGarbage) {
  EXPECT_THROW((void)model::parseModel("not a model"),
               model::SerializeError);
  EXPECT_THROW((void)model::parseModel("stcg-model 1\nname x\nbogus line"),
               model::SerializeError);
  EXPECT_THROW((void)model::loadModel("/nonexistent/path.stcgm"),
               model::SerializeError);
}

}  // namespace
}  // namespace stcg
