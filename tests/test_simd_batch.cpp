// SIMD dispatch-parity and early-exit-mask tests (DESIGN.md §5i).
//
//   - runtime dispatch: detection invariants, forceSimdLevel pinning an
//     executor's path at construction, unavailable levels degrading to
//     the scalar table,
//   - the STCG_SIMD-style env grammar through util::envFlag/envEnum
//     (exercised on scratch variable names: the real STCG_SIMD parse is
//     cached process-wide),
//   - dispatch parity: random-DAG differential fuzz plus targeted
//     special values (NaN, ±inf, ±0, fmin/fmax equal operands, int
//     wrap extremes, division by zero) pinned bitwise between the
//     scalar kernels, the vector kernels, and the scalar TapeExecutor,
//   - the Korel/Tracey kCmp distance forms (all six comparisons, both
//     wants, plus kTruth) bitwise across levels and vs DistanceTape,
//   - an 8-model sweep: BatchSimulator observations, outputs, and state
//     hashes bit-identical scalar vs vectorized,
//   - early-exit masks: runBounded() vs run() equivalence for callers
//     that consume distances through `d < bound`, masked lanes pinned
//     to +inf, the climber's accept order provably unchanged, and the
//     retired/skipped overlay accounting closed,
//   - lane-parallel interval slots: intervalVerdictsBatch vs per-env
//     intervalVerdicts, and sub-box dead-branch proofs validated
//     against random simulation.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "analysis/interval_tape.h"
#include "analysis/reachability.h"
#include "benchmodels/benchmodels.h"
#include "compile/compiler.h"
#include "coverage/coverage.h"
#include "expr/batch_tape.h"
#include "expr/builder.h"
#include "expr/simd.h"
#include "expr/tape.h"
#include "interval/interval.h"
#include "sim/batch_simulator.h"
#include "sim/simulator.h"
#include "solver/distance_tape.h"
#include "util/env.h"
#include "util/rng.h"

#include "fuzz_dag.h"

namespace stcg {
namespace {

using fuzz::FuzzDag;
using fuzz::makeFuzzDag;
using fuzz::randomEnv;
using fuzz::randomScalarFor;
using fuzz::sameBits;
using fuzz::sameScalar;

using expr::Env;
using expr::ExprPtr;
using expr::Scalar;
using expr::SimdLevel;
using expr::SlotRef;
using expr::Type;
using expr::VarInfo;
using interval::Interval;

constexpr int kLanes = 8;
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kQnan = std::numeric_limits<double>::quiet_NaN();

/// Pin activeSimdLevel() for a scope; executors constructed inside keep
/// the pinned kernel table for their whole lifetime.
class ForcedLevel {
 public:
  explicit ForcedLevel(SimdLevel lvl) { expr::forceSimdLevel(lvl); }
  ~ForcedLevel() { expr::forceSimdLevel(std::nullopt); }
  ForcedLevel(const ForcedLevel&) = delete;
  ForcedLevel& operator=(const ForcedLevel&) = delete;
};

/// The best non-scalar level on this machine, or nullopt when the build
/// or CPU has none (parity tests skip: there is nothing to compare).
std::optional<SimdLevel> vectorLevel() {
  const SimdLevel det = expr::detectedSimdLevel();
  if (det == SimdLevel::kScalar) return std::nullopt;
  return det;
}

// ----- Dispatch: detection, pinning, fallback ------------------------------

TEST(SimdDispatch, ScalarAlwaysAvailableAndActiveLevelIsAvailable) {
  EXPECT_TRUE(expr::simdLevelAvailable(SimdLevel::kScalar));
  EXPECT_TRUE(expr::simdLevelAvailable(expr::detectedSimdLevel()));
  EXPECT_TRUE(expr::simdLevelAvailable(expr::activeSimdLevel()));
  EXPECT_STREQ(expr::simdLevelName(SimdLevel::kScalar), "scalar");
  EXPECT_STREQ(expr::simdLevelName(SimdLevel::kAvx2), "avx2");
  EXPECT_STREQ(expr::simdLevelName(SimdLevel::kNeon), "neon");
}

TEST(SimdDispatch, ForceLevelPinsExecutorsAtConstruction) {
  const VarInfo x{0, "x", Type::kReal, -10, 10};
  expr::TapeBuilder b;
  (void)b.addRoot(expr::addE(expr::mkVar(x), expr::cReal(1.0)));
  const auto tape = b.finish();

  {
    ForcedLevel pin(SimdLevel::kScalar);
    expr::BatchTapeExecutor bx(tape, 4);
    EXPECT_EQ(bx.simdLevel(), SimdLevel::kScalar);
  }
  if (const auto vec = vectorLevel()) {
    ForcedLevel pin(*vec);
    expr::BatchTapeExecutor bx(tape, 4);
    EXPECT_EQ(bx.simdLevel(), *vec);
    // Restoring the hook must not retro-actively change the pinned path.
    expr::forceSimdLevel(std::nullopt);
    EXPECT_EQ(bx.simdLevel(), *vec);
  }
  // An executor constructed after the guard reverts to the active level.
  expr::BatchTapeExecutor bx(tape, 4);
  EXPECT_EQ(bx.simdLevel(), expr::activeSimdLevel());
}

TEST(SimdDispatch, UnavailableLevelsResolveToTheScalarTable) {
  for (const SimdLevel lvl :
       {SimdLevel::kScalar, SimdLevel::kAvx2, SimdLevel::kNeon}) {
    if (expr::simdLevelAvailable(lvl)) continue;
    EXPECT_EQ(&expr::laneKernelsFor(lvl),
              &expr::laneKernelsFor(SimdLevel::kScalar))
        << expr::simdLevelName(lvl);
  }
}

// ----- The STCG_SIMD env grammar (on scratch variables) --------------------

TEST(SimdEnv, EnumGrammarMatchesTheSimdSpellings) {
  // The accepted STCG_SIMD spellings, in the order simd.cpp passes them.
  const std::vector<std::string> allowed = {"0",    "scalar", "avx2",
                                            "neon", "1",      "auto"};
  const char* var = "STCG_TEST_SIMD_ENUM";
  ::unsetenv(var);
  EXPECT_EQ(util::envEnum(var, allowed), -1) << "unset -> -1";
  ::setenv(var, "", 1);
  EXPECT_EQ(util::envEnum(var, allowed), -1) << "empty -> -1";
  ::setenv(var, "scalar", 1);
  EXPECT_EQ(util::envEnum(var, allowed), 1);
  ::setenv(var, "AVX2", 1);
  EXPECT_EQ(util::envEnum(var, allowed), 2) << "case-insensitive";
  ::setenv(var, "auto", 1);
  EXPECT_EQ(util::envEnum(var, allowed), 5);

  const std::size_t before = util::envDiagnosticCount();
  ::setenv(var, "avx512-definitely-not-a-level", 1);
  EXPECT_EQ(util::envEnum(var, allowed), -1);
  EXPECT_EQ(util::envDiagnosticCount(), before + 1)
      << "unrecognized value -> one diagnostic";
  EXPECT_EQ(util::envEnum(var, allowed), -1);
  EXPECT_EQ(util::envDiagnosticCount(), before + 1)
      << "repeated parse of the same (variable, value) stays silent";
  ::unsetenv(var);
}

TEST(SimdEnv, FlagGrammarKeepsDefaultsOnGarbage) {
  const char* var = "STCG_TEST_SIMD_FLAG";
  ::unsetenv(var);
  EXPECT_TRUE(util::envFlag(var, true));
  EXPECT_FALSE(util::envFlag(var, false));
  for (const char* on : {"1", "true", "ON", "yes"}) {
    ::setenv(var, on, 1);
    EXPECT_TRUE(util::envFlag(var, false)) << on;
  }
  for (const char* off : {"0", "FALSE", "off", "No"}) {
    ::setenv(var, off, 1);
    EXPECT_FALSE(util::envFlag(var, true)) << off;
  }
  const std::size_t before = util::envDiagnosticCount();
  ::setenv(var, "definitely-not-boolean", 1);
  EXPECT_TRUE(util::envFlag(var, true)) << "garbage keeps the default";
  EXPECT_GE(util::envDiagnosticCount(), before + 1);
  ::unsetenv(var);
}

// ----- Dispatch parity: random-DAG differential fuzz -----------------------

TEST(SimdParityFuzz, RandomDagLanesBitIdenticalAcrossLevels) {
  const auto vec = vectorLevel();
  if (!vec) GTEST_SKIP() << "no vector unit: nothing to compare";
  Rng rng(52801);
  for (int trial = 0; trial < 12; ++trial) {
    FuzzDag d = makeFuzzDag(rng, /*withArrays=*/true);
    expr::TapeBuilder b;
    std::vector<ExprPtr> roots;
    std::vector<SlotRef> slots;
    const auto addRootFrom = [&](const std::vector<ExprPtr>& pool) {
      const auto& e = pool[rng.index(pool.size())];
      roots.push_back(e);
      slots.push_back(b.addRoot(e));
    };
    for (int i = 0; i < 3; ++i) addRootFrom(d.bools);
    for (int i = 0; i < 2; ++i) {
      addRootFrom(d.ints);
      addRootFrom(d.reals);
    }
    addRootFrom(d.realArrays);
    addRootFrom(d.intArrays);
    const auto tape = b.finish();

    std::unique_ptr<expr::BatchTapeExecutor> sx, vx;
    {
      ForcedLevel pin(SimdLevel::kScalar);
      sx = std::make_unique<expr::BatchTapeExecutor>(tape, kLanes);
    }
    {
      ForcedLevel pin(*vec);
      vx = std::make_unique<expr::BatchTapeExecutor>(tape, kLanes);
    }
    ASSERT_EQ(sx->simdLevel(), SimdLevel::kScalar);
    ASSERT_EQ(vx->simdLevel(), *vec);

    // A scalar TapeExecutor per lane as the third, kernel-free oracle.
    std::vector<std::unique_ptr<expr::TapeExecutor>> refs;
    for (int l = 0; l < kLanes; ++l) {
      const Env env = randomEnv(rng, d);
      refs.push_back(std::make_unique<expr::TapeExecutor>(tape));
      refs.back()->bindEnv(env);
      sx->bindEnv(l, env);
      vx->bindEnv(l, env);
    }
    const auto runAndCheck = [&](const char* what) {
      sx->run();
      vx->run();
      for (int l = 0; l < kLanes; ++l) {
        auto& ref = *refs[static_cast<std::size_t>(l)];
        ref.run();
        for (std::size_t i = 0; i < roots.size(); ++i) {
          if (roots[i]->isArray()) {
            const auto& a = ref.array(slots[i]);
            const auto& sa = sx->array(slots[i], l);
            const auto& va = vx->array(slots[i], l);
            ASSERT_EQ(a.size(), sa.size());
            ASSERT_EQ(a.size(), va.size());
            for (std::size_t j = 0; j < a.size(); ++j) {
              EXPECT_TRUE(sameScalar(a[j], sa[j]))
                  << what << " trial " << trial << " lane " << l << " root "
                  << i << " [" << j << "] (scalar kernels)";
              EXPECT_TRUE(sameScalar(sa[j], va[j]))
                  << what << " trial " << trial << " lane " << l << " root "
                  << i << " [" << j << "] (vector kernels)";
            }
          } else {
            EXPECT_TRUE(sameScalar(ref.scalar(slots[i]), sx->scalar(slots[i], l)))
                << what << " trial " << trial << " lane " << l << " root " << i
                << " (scalar kernels)";
            EXPECT_TRUE(sameScalar(sx->scalar(slots[i], l),
                                   vx->scalar(slots[i], l)))
                << what << " trial " << trial << " lane " << l << " root " << i
                << " (vector kernels)";
          }
        }
      }
    };
    runAndCheck("initial");
    for (int round = 0; round < 2; ++round) {
      for (int l = 0; l < kLanes; ++l) {
        for (int m = 0; m < 2; ++m) {
          const auto& v = d.vars[rng.index(d.vars.size())];
          const Scalar nv = randomScalarFor(rng, v);
          refs[static_cast<std::size_t>(l)]->setVar(v.id, nv);
          sx->setVar(l, v.id, nv);
          vx->setVar(l, v.id, nv);
        }
      }
      runAndCheck("rebound");
    }
  }
}

// ----- Dispatch parity: payload-row array paths ----------------------------

// Mixed-element-type arrays, forced-dynamic selects, out-of-range index
// clamps, and arrMove_ swap interleavings, lane-for-lane against the
// scalar TapeExecutor under both the scalar and the vector kernel tables.
// Rounds alternate per-lane binds (column writes into the tag planes)
// with broadcast binds (row fan-out), so uniform<->mixed plane
// transitions and setArrayVarBroadcast parity are both covered.
TEST(SimdArrayParityFuzz, MixedTypeArraysBitIdenticalAcrossLevels) {
  const auto vec = vectorLevel();
  if (!vec) GTEST_SKIP() << "no vector unit: nothing to compare";
  Rng rng(90217);
  for (int trial = 0; trial < 12; ++trial) {
    FuzzDag d = makeFuzzDag(rng, /*withArrays=*/true);
    expr::TapeBuilder b;
    std::vector<ExprPtr> roots;
    std::vector<SlotRef> slots;
    const auto addRootFrom = [&](const std::vector<ExprPtr>& pool) {
      const auto& e = pool[rng.index(pool.size())];
      roots.push_back(e);
      slots.push_back(b.addRoot(e));
    };
    // Array-heavy roots: rooted array slots are never swap-eligible while
    // the unrooted intermediates between them are, so kStore/array-kIte
    // chains interleave planeCopy and plane swap on the same run.
    for (int i = 0; i < 2; ++i) {
      addRootFrom(d.realArrays);
      addRootFrom(d.intArrays);
    }
    for (int i = 0; i < 2; ++i) {
      addRootFrom(d.ints);
      addRootFrom(d.reals);
    }
    addRootFrom(d.bools);
    const auto tape = b.finish();

    std::unique_ptr<expr::BatchTapeExecutor> sx, vx;
    {
      ForcedLevel pin(SimdLevel::kScalar);
      sx = std::make_unique<expr::BatchTapeExecutor>(tape, kLanes);
    }
    {
      ForcedLevel pin(*vec);
      vx = std::make_unique<expr::BatchTapeExecutor>(tape, kLanes);
    }

    std::vector<std::unique_ptr<expr::TapeExecutor>> refs;
    for (int l = 0; l < kLanes; ++l) {
      const Env env = fuzz::randomEnvMixedArrays(rng, d);
      refs.push_back(std::make_unique<expr::TapeExecutor>(tape));
      refs.back()->bindEnv(env);
      sx->bindEnv(l, env);
      vx->bindEnv(l, env);
    }
    const auto runAndCheck = [&](const char* what) {
      sx->run();
      vx->run();
      for (int l = 0; l < kLanes; ++l) {
        auto& ref = *refs[static_cast<std::size_t>(l)];
        ref.run();
        for (std::size_t i = 0; i < roots.size(); ++i) {
          if (roots[i]->isArray()) {
            const auto& a = ref.array(slots[i]);
            const auto& sa = sx->array(slots[i], l);
            const auto& va = vx->array(slots[i], l);
            ASSERT_EQ(a.size(), sa.size());
            ASSERT_EQ(a.size(), va.size());
            ASSERT_EQ(a.size(), sx->arrayLen(slots[i], l));
            for (std::size_t j = 0; j < a.size(); ++j) {
              EXPECT_TRUE(sameScalar(a[j], sa[j]))
                  << what << " trial " << trial << " lane " << l << " root "
                  << i << " [" << j << "] (scalar kernels)";
              EXPECT_TRUE(sameScalar(sa[j], va[j]))
                  << what << " trial " << trial << " lane " << l << " root "
                  << i << " [" << j << "] (vector kernels)";
              EXPECT_TRUE(sameScalar(a[j], sx->arrayElem(slots[i], l, j)))
                  << what << " trial " << trial << " lane " << l << " root "
                  << i << " [" << j << "] (arrayElem)";
            }
          } else {
            EXPECT_TRUE(
                sameScalar(ref.scalar(slots[i]), sx->scalar(slots[i], l)))
                << what << " trial " << trial << " lane " << l << " root " << i
                << " (scalar kernels)";
            EXPECT_TRUE(sameScalar(sx->scalar(slots[i], l),
                                   vx->scalar(slots[i], l)))
                << what << " trial " << trial << " lane " << l << " root " << i
                << " (vector kernels)";
          }
        }
      }
    };
    runAndCheck("initial");
    for (int round = 0; round < 3; ++round) {
      if (round == 1) {
        // Broadcast round: one mixed vector fanned out to every lane must
        // equal B per-lane binds of the same vector.
        const auto ar = fuzz::randomMixedArray(rng, 4);
        const auto ai = fuzz::randomMixedArray(rng, 3);
        sx->setArrayVarBroadcast(fuzz::kRealArrId, ar);
        vx->setArrayVarBroadcast(fuzz::kRealArrId, ar);
        sx->setArrayVarBroadcast(fuzz::kIntArrId, ai);
        vx->setArrayVarBroadcast(fuzz::kIntArrId, ai);
        for (int l = 0; l < kLanes; ++l) {
          refs[static_cast<std::size_t>(l)]->setArrayVar(fuzz::kRealArrId, ar);
          refs[static_cast<std::size_t>(l)]->setArrayVar(fuzz::kIntArrId, ai);
        }
      } else {
        for (int l = 0; l < kLanes; ++l) {
          auto& ref = *refs[static_cast<std::size_t>(l)];
          const auto ar = fuzz::randomMixedArray(rng, 4);
          const auto ai = fuzz::randomMixedArray(rng, 3);
          ref.setArrayVar(fuzz::kRealArrId, ar);
          ref.setArrayVar(fuzz::kIntArrId, ai);
          sx->setArrayVar(l, fuzz::kRealArrId, ar);
          vx->setArrayVar(l, fuzz::kRealArrId, ar);
          sx->setArrayVar(l, fuzz::kIntArrId, ai);
          vx->setArrayVar(l, fuzz::kIntArrId, ai);
          const auto& v = d.vars[rng.index(d.vars.size())];
          const Scalar nv = randomScalarFor(rng, v);
          ref.setVar(v.id, nv);
          sx->setVar(l, v.id, nv);
          vx->setVar(l, v.id, nv);
        }
      }
      runAndCheck(round == 1 ? "broadcast" : "rebound");
    }
  }
}

// Saturation edges of the index clamp: INT64_MIN/MAX, -1, 0, n-1, n as
// literal indices through kSelect and kStore, plus a real index whose
// toInt saturates, at every level against the scalar executor.
TEST(SimdArrayParity, ExtremeIndexClampEdges) {
  const std::vector<std::int64_t> idxs = {
      std::numeric_limits<std::int64_t>::min(), -1, 0, 2, 3, 4,
      std::numeric_limits<std::int64_t>::max()};
  const VarInfo iv{0, "i", Type::kInt, -10, 10};
  const auto arr = expr::cArray(
      Type::kReal, {Scalar::r(1.5), Scalar::r(-2.5), Scalar::r(4.0),
                    Scalar::r(-8.0)});
  expr::TapeBuilder b;
  std::vector<SlotRef> slots;
  for (const std::int64_t i : idxs) {
    slots.push_back(b.addRoot(expr::selectE(arr, expr::cInt(i))));
    slots.push_back(b.addRoot(expr::selectE(
        expr::storeE(arr, expr::cInt(i), expr::cReal(99.0)), expr::cInt(0))));
  }
  // Saturating real->int index conversions (±inf, NaN -> 0, huge finite).
  for (const double r : {1e300, -1e300, kInf, -kInf, kQnan}) {
    slots.push_back(b.addRoot(
        expr::selectE(arr, expr::castE(expr::cReal(r), Type::kInt))));
  }
  // A variable index so the slot isn't constant-folded away.
  slots.push_back(b.addRoot(expr::selectE(arr, expr::mkVar(iv))));
  const auto tape = b.finish();

  expr::TapeExecutor ref(tape);
  ref.setVar(iv.id, Scalar::i(7));
  ref.run();
  for (const SimdLevel lvl :
       {SimdLevel::kScalar, expr::detectedSimdLevel()}) {
    ForcedLevel pin(lvl);
    expr::BatchTapeExecutor bx(tape, kLanes);
    for (int l = 0; l < kLanes; ++l) bx.setVar(l, iv.id, Scalar::i(7));
    bx.run();
    for (const SlotRef& s : slots) {
      for (int l = 0; l < kLanes; ++l) {
        EXPECT_TRUE(sameScalar(ref.scalar(s), bx.scalar(s, l)))
            << expr::simdLevelName(lvl) << " slot " << s.slot << " lane "
            << l;
      }
    }
  }
}

// ----- Dispatch parity: targeted special values ----------------------------

TEST(SimdParity, SpecialValuesBitIdenticalAcrossLevels) {
  const auto vec = vectorLevel();
  if (!vec) GTEST_SKIP() << "no vector unit: nothing to compare";

  const VarInfo r0{0, "r0", Type::kReal, -100, 100};
  const VarInfo r1{1, "r1", Type::kReal, -100, 100};
  const VarInfo i0{2, "i0", Type::kInt, -100, 100};
  const VarInfo i1{3, "i1", Type::kInt, -100, 100};
  const VarInfo b0{4, "b0", Type::kBool, 0, 1};
  const VarInfo b1{5, "b1", Type::kBool, 0, 1};
  const auto R0 = expr::mkVar(r0), R1 = expr::mkVar(r1);
  const auto I0 = expr::mkVar(i0), I1 = expr::mkVar(i1);
  const auto B0 = expr::mkVar(b0), B1 = expr::mkVar(b1);

  expr::TapeBuilder b;
  std::vector<SlotRef> slots;
  const auto root = [&](ExprPtr e) { slots.push_back(b.addRoot(std::move(e))); };
  // Real kernels: arithmetic, guarded division, fmin/fmax, neg/abs, the
  // six comparisons.
  root(expr::addE(R0, R1));
  root(expr::subE(R0, R1));
  root(expr::mulE(R0, R1));
  root(expr::divE(R0, R1));
  root(expr::minE(R0, R1));
  root(expr::maxE(R0, R1));
  root(expr::negE(R0));
  root(expr::absE(R0));
  root(expr::ltE(R0, R1));
  root(expr::leE(R0, R1));
  root(expr::gtE(R0, R1));
  root(expr::geE(R0, R1));
  root(expr::eqE(R0, R1));
  root(expr::neE(R0, R1));
  // Int kernels (wrap semantics) and the guarded int division.
  root(expr::addE(I0, I1));
  root(expr::subE(I0, I1));
  root(expr::minE(I0, I1));
  root(expr::maxE(I0, I1));
  root(expr::negE(I0));
  root(expr::absE(I0));
  root(expr::divE(I0, I1));
  root(expr::modE(I0, I1));
  // Bool kernels and the raw-payload select.
  root(expr::andE(B0, B1));
  root(expr::orE(B0, B1));
  root(expr::xorE(B0, B1));
  root(expr::notE(B0));
  root(expr::iteE(B0, R0, R1));
  root(expr::iteE(B1, I0, I1));
  const auto tape = b.finish();

  // One special pair per lane: NaN on either side and both, ±0 in both
  // orders (fmin/fmax equal-operand: glibc returns the SECOND operand),
  // opposite infinities (their sum is NaN), equal infinities, and an
  // ordinary equal pair. Int lanes mix signs and hit the guarded zero
  // divisors at the same time (the engine's int domain excludes the
  // overflow extremes — the fuzz harness clamps for the same reason).
  struct LaneEnv {
    double r0v, r1v;
    std::int64_t i0v, i1v;
    bool b0v, b1v;
  };
  const std::vector<LaneEnv> laneEnvs = {
      {kQnan, 1.0, 83, 7, true, false},
      {1.0, kQnan, -100, -1, false, true},
      {kQnan, kQnan, -100, -100, true, true},
      {+0.0, -0.0, 7, 0, false, false},
      {-0.0, +0.0, -7, 0, true, false},
      {kInf, -kInf, 100, 100, false, true},
      {kInf, kInf, -100, 1, true, true},
      {3.5, 3.5, 0, 0, false, false},
  };
  const int B = static_cast<int>(laneEnvs.size());

  std::unique_ptr<expr::BatchTapeExecutor> sx, vx;
  {
    ForcedLevel pin(SimdLevel::kScalar);
    sx = std::make_unique<expr::BatchTapeExecutor>(tape, B);
  }
  {
    ForcedLevel pin(*vec);
    vx = std::make_unique<expr::BatchTapeExecutor>(tape, B);
  }
  std::vector<std::unique_ptr<expr::TapeExecutor>> refs;
  for (int l = 0; l < B; ++l) {
    const LaneEnv& le = laneEnvs[static_cast<std::size_t>(l)];
    Env env;
    env.set(r0.id, Scalar::r(le.r0v));
    env.set(r1.id, Scalar::r(le.r1v));
    env.set(i0.id, Scalar::i(le.i0v));
    env.set(i1.id, Scalar::i(le.i1v));
    env.set(b0.id, Scalar::b(le.b0v));
    env.set(b1.id, Scalar::b(le.b1v));
    refs.push_back(std::make_unique<expr::TapeExecutor>(tape));
    refs.back()->bindEnv(env);
    sx->bindEnv(l, env);
    vx->bindEnv(l, env);
  }
  sx->run();
  vx->run();
  for (int l = 0; l < B; ++l) {
    auto& ref = *refs[static_cast<std::size_t>(l)];
    ref.run();
    for (std::size_t i = 0; i < slots.size(); ++i) {
      EXPECT_TRUE(sameScalar(ref.scalar(slots[i]), sx->scalar(slots[i], l)))
          << "lane " << l << " root " << i << " (scalar kernels vs tree)";
      EXPECT_TRUE(sameScalar(sx->scalar(slots[i], l), vx->scalar(slots[i], l)))
          << "lane " << l << " root " << i << " (vector vs scalar kernels)";
    }
  }
  // Spot-check the operand-order contract survived vectorization: with
  // r0 = +0.0, r1 = -0.0 (lane 3), runtime glibc fmin/fmax return the
  // FIRST operand when the arguments compare equal (simd_ops.h).
  EXPECT_TRUE(sameBits(vx->scalar(slots[4], 3).toReal(), +0.0));
  EXPECT_TRUE(sameBits(vx->scalar(slots[5], 3).toReal(), +0.0));
}

// ----- Dispatch parity: Korel/Tracey kCmp distance forms -------------------

TEST(SimdParity, DistanceKCmpFormsBitIdenticalAcrossLevels) {
  const auto vec = vectorLevel();
  if (!vec) GTEST_SKIP() << "no vector unit: nothing to compare";

  const VarInfo x{0, "x", Type::kReal, -1000, 1000};
  const VarInfo y{1, "y", Type::kReal, -1000, 1000};
  const std::vector<VarInfo> vars = {x, y};
  const auto X = expr::mkVar(x), Y = expr::mkVar(y);

  std::vector<ExprPtr> goals;
  for (const auto& mk : {expr::ltE, expr::leE, expr::gtE, expr::geE,
                         expr::eqE, expr::neE}) {
    goals.push_back(mk(X, Y));             // dCmp[ix][want=true]
    goals.push_back(expr::notE(mk(X, Y))); // dCmp[ix][want=false]
  }
  // A composite goal (kSum + kMin over the forms) and a bare truth goal.
  goals.push_back(expr::orE(expr::andE(expr::ltE(X, Y), expr::geE(X, Y)),
                            expr::eqE(X, Y)));

  // Special pairs first, then deterministic random points.
  std::vector<std::vector<double>> points = {
      {kQnan, 1.0}, {1.0, kQnan}, {kInf, -kInf}, {-0.0, +0.0},
      {3.5, 3.5},   {-2.0, 7.0},
  };
  Rng rng(9917);
  while (points.size() < 4 * kLanes) {
    points.push_back({rng.uniformReal(-1000, 1000),
                      rng.uniformReal(-1000, 1000)});
  }

  for (std::size_t g = 0; g < goals.size(); ++g) {
    solver::DistanceTape oracle(goals[g], vars);
    std::unique_ptr<solver::BatchDistanceTape> sx, vx;
    {
      ForcedLevel pin(SimdLevel::kScalar);
      sx = std::make_unique<solver::BatchDistanceTape>(goals[g], vars, kLanes);
    }
    {
      ForcedLevel pin(*vec);
      vx = std::make_unique<solver::BatchDistanceTape>(goals[g], vars, kLanes);
    }
    for (std::size_t base = 0; base + kLanes <= points.size();
         base += kLanes) {
      for (int l = 0; l < kLanes; ++l) {
        sx->setPoint(l, points[base + static_cast<std::size_t>(l)]);
        vx->setPoint(l, points[base + static_cast<std::size_t>(l)]);
      }
      sx->run();
      vx->run();
      for (int l = 0; l < kLanes; ++l) {
        const double ref =
            oracle.rebind(points[base + static_cast<std::size_t>(l)]);
        EXPECT_TRUE(sameBits(ref, sx->distance(l)))
            << "goal " << g << " point " << base + l << " (scalar kernels)";
        EXPECT_TRUE(sameBits(sx->distance(l), vx->distance(l)))
            << "goal " << g << " point " << base + l << " (vector kernels)";
      }
    }
  }
}

// ----- Dispatch parity: 8-model simulation sweep ---------------------------

class SimdModelSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(SimdModelSweep, BatchSimulationBitIdenticalScalarVsVector) {
  const auto vec = vectorLevel();
  if (!vec) GTEST_SKIP() << "no vector unit: nothing to compare";
  const auto cm = compile::compile(bench::buildBenchModel(GetParam()));
  constexpr int B = 4;

  std::unique_ptr<sim::BatchSimulator> ssim, vsim;
  {
    ForcedLevel pin(SimdLevel::kScalar);
    ssim = std::make_unique<sim::BatchSimulator>(cm, B);
  }
  {
    ForcedLevel pin(*vec);
    vsim = std::make_unique<sim::BatchSimulator>(cm, B);
  }

  Rng rng(41117);
  std::vector<sim::InputVector> ins(B);
  std::vector<const sim::InputVector*> inPtrs(B);
  sim::StepObservationBatch obsS, obsV;
  const std::size_t nDecisions = cm.decisions.size();
  for (int stepNo = 0; stepNo < 80; ++stepNo) {
    for (int l = 0; l < B; ++l) {
      ins[static_cast<std::size_t>(l)] = sim::randomInput(cm, rng);
      inPtrs[static_cast<std::size_t>(l)] = &ins[static_cast<std::size_t>(l)];
    }
    ssim->stepBatch(inPtrs, obsS);
    vsim->stepBatch(inPtrs, obsV);
    for (int l = 0; l < B; ++l) {
      ASSERT_EQ(obsS.outputCount(), obsV.outputCount());
      for (std::size_t i = 0; i < obsS.outputCount(); ++i) {
        EXPECT_TRUE(sameScalar(obsS.output(l, i), obsV.output(l, i)))
            << "step " << stepNo << " lane " << l << " output " << i;
      }
      for (std::size_t di = 0; di < nDecisions; ++di) {
        ASSERT_EQ(obsS.decisionTaken(l, di), obsV.decisionTaken(l, di))
            << "step " << stepNo << " lane " << l << " decision " << di;
        if (obsS.decisionTaken(l, di) < 0) continue;
        const std::size_t nc = obsS.conditionCount(di);
        ASSERT_EQ(nc, obsV.conditionCount(di));
        for (std::size_t ci = 0; ci < nc; ++ci) {
          EXPECT_EQ(obsS.conditionValues(l, di)[ci],
                    obsV.conditionValues(l, di)[ci])
              << "step " << stepNo << " lane " << l << " decision " << di
              << " condition " << ci;
        }
      }
      EXPECT_TRUE(ssim->state(l) == vsim->state(l))
          << "step " << stepNo << " lane " << l;
      EXPECT_EQ(sim::snapshotHash(ssim->state(l)),
                sim::snapshotHash(vsim->state(l)))
          << "step " << stepNo << " lane " << l;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, SimdModelSweep,
                         ::testing::Values("CPUTask", "AFC", "TWC",
                                           "NICProtocol", "UTPC", "LANSwitch",
                                           "LEDLC", "TCP"));

// ----- Early-exit masks: runBounded vs run ---------------------------------

// Random conjunction/disjunction goals over the fuzz variables: random
// and/or mixing inside for kMin coverage, but always a top-level andE —
// a kMin root has no monotone lower-bound slot before the final
// instruction, so an or-rooted goal can never skip anything and the
// skip-rate assertions below would be vacuous.
ExprPtr mixedGoal(Rng& rng, const FuzzDag& d) {
  ExprPtr g = d.bools[rng.index(d.bools.size())];
  for (int i = 0; i < 2; ++i) {
    const auto& b = d.bools[rng.index(d.bools.size())];
    g = rng.chance(0.6) ? expr::andE(std::move(g), b)
                        : expr::orE(std::move(g), b);
  }
  // Conjoin two fresh variable comparisons (never constant-foldable, so
  // the top-level kSum survives even when g collapses to a constant).
  ExprPtr c1 = expr::leE(expr::mkVar(d.vars[5]), expr::mkVar(d.vars[6]));
  ExprPtr c2 = expr::geE(expr::mkVar(d.vars[2]), expr::mkVar(d.vars[3]));
  return expr::andE(std::move(c1), expr::andE(std::move(g), std::move(c2)));
}

std::vector<double> randomPoint(Rng& rng, const std::vector<VarInfo>& vars) {
  std::vector<double> p(vars.size());
  for (std::size_t i = 0; i < p.size(); ++i) {
    const auto& v = vars[i];
    p[i] = v.type == Type::kReal
               ? rng.uniformReal(v.lo, v.hi)
               : static_cast<double>(
                     rng.uniformInt(static_cast<std::int64_t>(v.lo),
                                    static_cast<std::int64_t>(v.hi)));
  }
  return p;
}

TEST(EarlyExitMask, BoundedDistancesEquivalentForBoundConsumers) {
  Rng rng(77031);
  for (int trial = 0; trial < 10; ++trial) {
    FuzzDag d = makeFuzzDag(rng, /*withArrays=*/false);
    const ExprPtr goal = mixedGoal(rng, d);
    solver::BatchDistanceTape full(goal, d.vars, kLanes);
    solver::BatchDistanceTape mask(goal, d.vars, kLanes);
    solver::DistanceTape probe(goal, d.vars);  // overlay size for accounting

    std::uint64_t boundedRuns = 0;
    for (int round = 0; round < 6; ++round) {
      std::vector<std::vector<double>> pts;
      for (int l = 0; l < kLanes; ++l) {
        pts.push_back(randomPoint(rng, d.vars));
        full.setPoint(l, pts.back());
        mask.setPoint(l, pts.back());
      }
      full.run();
      // Bounds from loose to degenerate: +inf masks nothing, the lane
      // distances themselves make some lanes borderline, 0 masks all.
      std::vector<double> bounds = {kInf, 0.0};
      for (int l = 0; l < kLanes; l += 3) bounds.push_back(full.distance(l));
      for (const double bound : bounds) {
        mask.runBounded(bound);
        ++boundedRuns;
        for (int l = 0; l < kLanes; ++l) {
          const double df = full.distance(l);
          const double db = mask.distance(l);
          // The contract consumers rely on: the accept test is identical.
          EXPECT_EQ(db < bound, df < bound)
              << "trial " << trial << " round " << round << " lane " << l
              << " bound " << bound;
          if (df < bound) {
            EXPECT_TRUE(sameBits(df, db))
                << "surviving lanes must carry the exact distance";
          } else if (!sameBits(df, db)) {
            EXPECT_EQ(db, kInf)
                << "masked lanes must report +inf, nothing else";
          }
        }
      }
    }
    // The retired/skipped accounting closes: every (instruction, lane)
    // pair of every run is counted exactly once, on one side or the other.
    const auto& st = mask.overlayStats();
    EXPECT_EQ(st.boundedRuns, boundedRuns);
    EXPECT_EQ(st.fullRuns, 0u);
    EXPECT_EQ(st.laneInstrsRetired + st.laneInstrsSkipped,
              static_cast<std::uint64_t>(probe.overlayInstrCount()) * kLanes *
                  boundedRuns)
        << "trial " << trial;
    EXPECT_GT(st.laneInstrsSkipped, 0u)
        << "the bound=0 rounds must mask every lane";
  }
}

TEST(EarlyExitMask, ClimberAcceptOrderAndFinalBestUnchanged) {
  Rng rng(90121);
  for (int trial = 0; trial < 8; ++trial) {
    FuzzDag d = makeFuzzDag(rng, /*withArrays=*/false);
    const ExprPtr goal = mixedGoal(rng, d);
    // The same deterministic candidate stream scanned twice: once with
    // full evaluation, once through the bounded path exactly as the
    // climber uses it (bound = incumbent at chunk start, sequential
    // accept commit inside the chunk).
    std::vector<std::vector<double>> pts;
    for (int i = 0; i < 48 * kLanes; ++i) pts.push_back(randomPoint(rng, d.vars));

    solver::BatchDistanceTape full(goal, d.vars, kLanes);
    solver::BatchDistanceTape mask(goal, d.vars, kLanes);
    double bestFull = kInf, bestMask = kInf;
    std::vector<std::size_t> accFull, accMask;
    for (std::size_t base = 0; base + kLanes <= pts.size(); base += kLanes) {
      for (int l = 0; l < kLanes; ++l) {
        full.setPoint(l, pts[base + static_cast<std::size_t>(l)]);
        mask.setPoint(l, pts[base + static_cast<std::size_t>(l)]);
      }
      full.run();
      mask.runBounded(bestMask);
      for (int l = 0; l < kLanes; ++l) {
        if (full.distance(l) < bestFull) {
          bestFull = full.distance(l);
          accFull.push_back(base + static_cast<std::size_t>(l));
        }
        if (mask.distance(l) < bestMask) {
          bestMask = mask.distance(l);
          accMask.push_back(base + static_cast<std::size_t>(l));
        }
      }
    }
    EXPECT_EQ(accFull, accMask)
        << "trial " << trial << ": masking must never change accept order";
    EXPECT_TRUE(sameBits(bestFull, bestMask)) << "trial " << trial;
  }
}

// ----- Lane-parallel interval slots ----------------------------------------

TEST(BatchInterval, LaneVerdictsMatchPerEnvVerdictsOnBenchModels) {
  Rng rng(66180);
  for (const auto& info : bench::allBenchModels()) {
    const auto cm = compile::compile(info.build());
    const auto inv = analysis::computeStateInvariant(cm);
    std::vector<ExprPtr> roots;
    for (const auto& br : cm.branches) roots.push_back(br.pathConstraint);
    if (roots.empty()) continue;

    // One random input sub-box per lane on top of the state invariant —
    // the exact shape the sub-box refutation layer binds.
    std::vector<analysis::IntervalEnv> envs;
    for (int l = 0; l < kLanes; ++l) {
      analysis::IntervalEnv env = inv.env;
      for (const auto& in : cm.inputs) {
        const auto& v = in.info;
        if (v.type == Type::kReal) {
          double a = rng.uniformReal(v.lo, v.hi);
          double bb = rng.uniformReal(v.lo, v.hi);
          if (a > bb) std::swap(a, bb);
          env.set(v.id, Interval(a, bb));
        } else {
          std::int64_t a = rng.uniformInt(static_cast<std::int64_t>(v.lo),
                                          static_cast<std::int64_t>(v.hi));
          std::int64_t bb = rng.uniformInt(static_cast<std::int64_t>(v.lo),
                                           static_cast<std::int64_t>(v.hi));
          if (a > bb) std::swap(a, bb);
          env.set(v.id, Interval(static_cast<double>(a),
                                 static_cast<double>(bb)));
        }
      }
      envs.push_back(std::move(env));
    }

    const auto lanes = analysis::intervalVerdictsBatch(roots, envs);
    ASSERT_EQ(lanes.size(), envs.size()) << info.name;
    for (std::size_t e = 0; e < envs.size(); ++e) {
      const auto single = analysis::intervalVerdicts(roots, envs[e]);
      ASSERT_EQ(lanes[e].size(), single.size()) << info.name;
      for (std::size_t i = 0; i < single.size(); ++i) {
        EXPECT_TRUE(lanes[e][i] == single[i])
            << info.name << " env " << e << " root " << i << ": ["
            << lanes[e][i].lo() << "," << lanes[e][i].hi() << "] vs ["
            << single[i].lo() << "," << single[i].hi() << "]";
      }
    }
  }
}

TEST(SubBoxRefutation, DeadBranchProofsHoldUnderRandomSimulation) {
  for (const auto& info : bench::allBenchModels()) {
    const auto cm = compile::compile(info.build());
    analysis::ReachabilityOptions opt;
    ASSERT_GT(opt.subBoxLanes, 1) << "the lane-parallel layer defaults on";
    const auto report = analysis::findDeadBranches(cm, opt);
    if (report.deadBranches.empty()) continue;

    coverage::CoverageTracker cov(cm);
    sim::Simulator s(cm);
    Rng rng(5209);
    for (int step = 0; step < 1200; ++step) {
      (void)s.step(sim::randomInput(cm, rng), &cov);
    }
    for (const int b : report.deadBranches) {
      EXPECT_FALSE(cov.branchCovered(b))
          << info.name << ": branch " << b
          << " was proven dead but fired under random simulation";
    }
  }
}

}  // namespace
}  // namespace stcg
