// Unit and property tests for interval arithmetic, boxes, and the HC4
// contractor — including the soundness property the solver's UNSAT answers
// depend on (contraction never removes a satisfying point).
#include <gtest/gtest.h>

#include "expr/builder.h"
#include "expr/eval.h"
#include "interval/box.h"
#include "interval/hc4.h"
#include "util/rng.h"

namespace stcg::interval {
namespace {

using expr::cInt;
using expr::cReal;
using expr::ExprPtr;
using expr::mkVar;
using expr::Scalar;
using expr::Type;
using expr::VarInfo;

// ---------- Interval arithmetic ----------

TEST(Interval, BasicsAndEmptiness) {
  EXPECT_TRUE(Interval::empty().isEmpty());
  EXPECT_FALSE(Interval(1, 2).isEmpty());
  EXPECT_TRUE(Interval(1, 2).contains(1.5));
  EXPECT_FALSE(Interval(1, 2).contains(2.5));
  EXPECT_TRUE(Interval(1, 2).intersect(Interval(3, 4)).isEmpty());
  EXPECT_EQ(Interval(1, 2).hull(Interval(4, 5)), Interval(1, 5));
}

TEST(Interval, IntegralHull) {
  EXPECT_EQ(Interval(0.3, 2.7).integralHull(), Interval(1, 2));
  EXPECT_TRUE(Interval(0.3, 0.7).integralHull().isEmpty());
  EXPECT_EQ(Interval(-2.5, -0.5).integralHull(), Interval(-2, -1));
  EXPECT_EQ(Interval(1, 4).integerCount(), 4.0);
}

TEST(Interval, Arithmetic) {
  EXPECT_EQ(addI({1, 2}, {3, 4}), Interval(4, 6));
  EXPECT_EQ(subI({1, 2}, {3, 4}), Interval(-3, -1));
  EXPECT_EQ(mulI({-1, 2}, {3, 4}), Interval(-4, 8));
  EXPECT_EQ(negI({1, 2}), Interval(-2, -1));
  EXPECT_EQ(absI({-3, 2}), Interval(0, 3));
  EXPECT_EQ(minI({1, 5}, {3, 4}), Interval(1, 4));
  EXPECT_EQ(maxI({1, 5}, {3, 4}), Interval(3, 5));
}

TEST(Interval, DivisionRespectsGuard) {
  EXPECT_EQ(divI({6, 8}, {2, 4}), Interval(1.5, 4));
  // Denominator containing 0: result must contain the guard value 0.
  EXPECT_TRUE(divI({6, 8}, {-1, 1}).containsZero());
  EXPECT_EQ(divI({6, 8}, Interval::point(0.0)), Interval::point(0.0));
}

TEST(Interval, BooleanLattice) {
  EXPECT_TRUE(Interval::boolTrue().isTrue());
  EXPECT_TRUE(Interval::boolFalse().isFalse());
  EXPECT_TRUE(Interval::boolUnknown().canBeTrue());
  EXPECT_TRUE(Interval::boolUnknown().canBeFalse());
  EXPECT_TRUE(andI(Interval::boolTrue(), Interval::boolUnknown())
                  .canBeFalse());
  EXPECT_TRUE(andI(Interval::boolTrue(), Interval::boolTrue()).isTrue());
  EXPECT_TRUE(orI(Interval::boolFalse(), Interval::boolFalse()).isFalse());
  EXPECT_TRUE(notI(Interval::boolTrue()).isFalse());
  EXPECT_TRUE(xorI(Interval::boolTrue(), Interval::boolFalse()).isTrue());
}

TEST(Interval, Relations) {
  EXPECT_TRUE(ltI({1, 2}, {3, 4}).isTrue());
  EXPECT_TRUE(ltI({5, 6}, {3, 4}).isFalse());
  EXPECT_TRUE(ltI({1, 4}, {3, 6}).canBeTrue());
  EXPECT_TRUE(ltI({1, 4}, {3, 6}).canBeFalse());
  EXPECT_TRUE(eqI(Interval::point(2), Interval::point(2)).isTrue());
  EXPECT_TRUE(eqI({1, 2}, {3, 4}).isFalse());
  EXPECT_TRUE(leI({1, 3}, {3, 4}).canBeTrue());
}

// ---------- Box ----------

std::vector<VarInfo> twoVars() {
  return {{0, "x", Type::kInt, 0, 10}, {1, "y", Type::kReal, -1, 1}};
}

TEST(BoxTest, InitialDomainsFromVarInfo) {
  Box box(twoVars());
  EXPECT_EQ(box.domain(0), Interval(0, 10));
  EXPECT_EQ(box.domain(1), Interval(-1, 1));
  EXPECT_FALSE(box.isEmpty());
}

TEST(BoxTest, NarrowRoundsDiscreteDomains) {
  Box box(twoVars());
  EXPECT_TRUE(box.narrow(0, Interval(1.2, 3.8)));
  EXPECT_EQ(box.domain(0), Interval(2, 3));
  EXPECT_FALSE(box.narrow(0, Interval(2.1, 2.9)));  // no integer left
  EXPECT_TRUE(box.isEmpty());
}

TEST(BoxTest, SplitPrefersWidestDimension) {
  Box box(twoVars());
  // x has 11 integers, y has width 2: integer count dominates.
  EXPECT_EQ(box.splitDimension(), 0);
  box.setDomain(0, Interval::point(5));
  EXPECT_EQ(box.splitDimension(), 1);
  box.setDomain(1, Interval::point(0.5));
  EXPECT_EQ(box.splitDimension(), -1);
}

// ---------- HC4 ----------

TEST(Hc4, ContractsLinearEquality) {
  // x + 3 == 7 narrows x to exactly 4.
  const auto x = mkVar({0, "x", Type::kInt, -100, 100});
  Hc4Contractor c(expr::eqE(expr::addE(x, cInt(3)), cInt(7)));
  Box box({{0, "x", Type::kInt, -100, 100}});
  EXPECT_NE(c.contract(box), ContractOutcome::kEmpty);
  EXPECT_EQ(box.domain(0), Interval(4, 4));
}

TEST(Hc4, RefutesContradiction) {
  const auto x = mkVar({0, "x", Type::kInt, 0, 10});
  Hc4Contractor c(expr::andE(expr::gtE(x, cInt(7)), expr::ltE(x, cInt(3))));
  Box box({{0, "x", Type::kInt, 0, 10}});
  EXPECT_EQ(c.contract(box), ContractOutcome::kEmpty);
}

TEST(Hc4, StrictInequalityIsIntegerTight) {
  const auto x = mkVar({0, "x", Type::kInt, 0, 10});
  Hc4Contractor c(expr::ltE(x, cInt(4)));
  Box box({{0, "x", Type::kInt, 0, 10}});
  (void)c.contract(box);
  EXPECT_EQ(box.domain(0), Interval(0, 3));
}

TEST(Hc4, ConjunctionNarrowsBothSides) {
  const auto x = mkVar({0, "x", Type::kReal, -10, 10});
  const auto y = mkVar({1, "y", Type::kReal, -10, 10});
  // x >= 2 && y <= -1 && x + y == 2 -> x in [3,10]... then y == 2 - x.
  Hc4Contractor c(expr::andE(
      expr::andE(expr::geE(x, cReal(2.0)), expr::leE(y, cReal(-1.0))),
      expr::eqE(expr::addE(x, y), cReal(2.0))));
  Box box({{0, "x", Type::kReal, -10, 10}, {1, "y", Type::kReal, -10, 10}});
  EXPECT_NE(c.contract(box, 6), ContractOutcome::kEmpty);
  EXPECT_GE(box.domain(0).lo(), 3.0);
  EXPECT_LE(box.domain(1).hi(), -1.0);
}

TEST(Hc4, SelectNarrowsIndexToMatchingElements) {
  // a = [10, 20, 30, 20]; select(a, i) == 20 keeps i in hull [1, 3].
  const auto arr = expr::cArray(
      Type::kInt, {Scalar::i(10), Scalar::i(20), Scalar::i(30), Scalar::i(20)});
  const auto i = mkVar({0, "i", Type::kInt, 0, 3});
  Hc4Contractor c(expr::eqE(expr::selectE(arr, i), cInt(20)));
  Box box({{0, "i", Type::kInt, 0, 3}});
  EXPECT_NE(c.contract(box), ContractOutcome::kEmpty);
  EXPECT_EQ(box.domain(0), Interval(1, 3));
}

TEST(Hc4, SelectRefutesMissingElement) {
  const auto arr =
      expr::cArray(Type::kInt, {Scalar::i(1), Scalar::i(2), Scalar::i(3)});
  const auto i = mkVar({0, "i", Type::kInt, 0, 2});
  Hc4Contractor c(expr::eqE(expr::selectE(arr, i), cInt(99)));
  Box box({{0, "i", Type::kInt, 0, 2}});
  EXPECT_EQ(c.contract(box), ContractOutcome::kEmpty);
}

TEST(Hc4, IteContractsConditionWhenBranchInfeasible) {
  // ite(c, 1, 2) == 2 forces c false.
  const auto c = mkVar({0, "c", Type::kBool, 0, 1});
  Hc4Contractor h(expr::eqE(expr::iteE(c, cInt(1), cInt(2)), cInt(2)));
  Box box({{0, "c", Type::kBool, 0, 1}});
  EXPECT_NE(h.contract(box), ContractOutcome::kEmpty);
  EXPECT_TRUE(box.domain(0).isFalse());
}

TEST(Hc4, ForwardEvalDetectsTautologyAndContradiction) {
  const auto x = mkVar({0, "x", Type::kInt, 5, 10});
  Box box({{0, "x", Type::kInt, 5, 10}});
  Hc4Contractor taut(expr::geE(x, cInt(0)));
  EXPECT_TRUE(taut.forwardEval(box).isTrue());
  Hc4Contractor contra(expr::ltE(x, cInt(0)));
  EXPECT_TRUE(contra.forwardEval(box).isFalse());
}

// ---------- Soundness property sweep ----------

// Random expression generator over three bounded int vars and two reals.
ExprPtr randomBoolExpr(Rng& rng, const std::vector<ExprPtr>& leaves,
                       int depth) {
  const auto numeric = [&](auto&& self, int d) -> ExprPtr {
    if (d <= 0 || rng.chance(0.3)) {
      if (rng.chance(0.5)) return leaves[rng.index(leaves.size())];
      return rng.chance(0.5) ? cInt(rng.uniformInt(-5, 5))
                             : cReal(rng.uniformReal(-5, 5));
    }
    const auto a = self(self, d - 1);
    const auto b = self(self, d - 1);
    switch (rng.index(6)) {
      case 0: return expr::addE(a, b);
      case 1: return expr::subE(a, b);
      case 2: return expr::mulE(a, b);
      case 3: return expr::minE(a, b);
      case 4: return expr::maxE(a, b);
      default: return expr::absE(a);
    }
  };
  const auto rel = [&](int d) {
    const auto a = numeric(numeric, d);
    const auto b = numeric(numeric, d);
    switch (rng.index(4)) {
      case 0: return expr::ltE(a, b);
      case 1: return expr::leE(a, b);
      case 2: return expr::eqE(a, b);
      default: return expr::neE(a, b);
    }
  };
  if (depth <= 0 || rng.chance(0.4)) return rel(1);
  const auto a = randomBoolExpr(rng, leaves, depth - 1);
  const auto b = randomBoolExpr(rng, leaves, depth - 1);
  switch (rng.index(3)) {
    case 0: return expr::andE(a, b);
    case 1: return expr::orE(a, b);
    default: return expr::notE(a);
  }
}

class Hc4SoundnessSweep : public ::testing::TestWithParam<int> {};

TEST_P(Hc4SoundnessSweep, ContractionNeverRemovesWitnesses) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 1299709 + 17);
  const std::vector<VarInfo> vars = {{0, "a", Type::kInt, -6, 6},
                                     {1, "b", Type::kInt, -6, 6},
                                     {2, "c", Type::kInt, 0, 12}};
  std::vector<ExprPtr> leaves;
  for (const auto& v : vars) leaves.push_back(mkVar(v));

  const auto goal = randomBoolExpr(rng, leaves, 3);
  // Collect all satisfying integer points by brute force.
  std::vector<std::array<std::int64_t, 3>> witnesses;
  for (std::int64_t a = -6; a <= 6; ++a) {
    for (std::int64_t b = -6; b <= 6; ++b) {
      for (std::int64_t c = 0; c <= 12; ++c) {
        expr::Env env;
        env.set(0, Scalar::i(a));
        env.set(1, Scalar::i(b));
        env.set(2, Scalar::i(c));
        if (expr::evaluate(goal, env).toBool()) witnesses.push_back({a, b, c});
      }
    }
  }
  Hc4Contractor contractor(goal);
  Box box(vars);
  const auto out = contractor.contract(box, 4);
  if (out == ContractOutcome::kEmpty) {
    // Soundness: an empty contraction must mean no witness exists.
    EXPECT_TRUE(witnesses.empty())
        << "HC4 refuted a satisfiable constraint: " << goal->toString();
  } else {
    for (const auto& w : witnesses) {
      for (int d = 0; d < 3; ++d) {
        EXPECT_TRUE(box.domain(d).contains(static_cast<double>(w[d])))
            << "witness dropped from dim " << d << " of "
            << goal->toString();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomConstraints, Hc4SoundnessSweep,
                         ::testing::Range(0, 40));

}  // namespace
}  // namespace stcg::interval
