// Tests for the search-based solver (branch distance), the portfolio
// dispatcher, and their integration with STCG.
#include <gtest/gtest.h>

#include "compile/compiler.h"
#include "expr/builder.h"
#include "model/model.h"
#include "solver/local_search.h"
#include "stcg/stcg_generator.h"

namespace stcg::solver {
namespace {

using expr::cInt;
using expr::cReal;
using expr::Env;
using expr::mkVar;
using expr::Scalar;
using expr::Type;
using expr::VarInfo;

const VarInfo kX{0, "x", Type::kInt, -1000, 1000};
const VarInfo kY{1, "y", Type::kInt, -1000, 1000};

// Sanitized builds slow the solver several-fold; scale the time budgets
// of the end-to-end search tests so they measure behaviour, not ASan
// overhead.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr std::int64_t kBudgetScale = 4;
#else
constexpr std::int64_t kBudgetScale = 1;
#endif

Env envOf(std::int64_t x, std::int64_t y) {
  Env env;
  env.set(0, Scalar::i(x));
  env.set(1, Scalar::i(y));
  return env;
}

TEST(BranchDistance, ZeroIffSatisfied) {
  const auto goal = expr::eqE(mkVar(kX), cInt(7));
  EXPECT_EQ(branchDistance(goal, envOf(7, 0), true), 0.0);
  EXPECT_EQ(branchDistance(goal, envOf(9, 0), true), 2.0);
  EXPECT_EQ(branchDistance(goal, envOf(7, 0), false), 1.0);
  EXPECT_EQ(branchDistance(goal, envOf(9, 0), false), 0.0);
}

TEST(BranchDistance, GradientTowardInequality) {
  const auto goal = expr::ltE(mkVar(kX), cInt(0));
  const double far = branchDistance(goal, envOf(100, 0), true);
  const double near = branchDistance(goal, envOf(1, 0), true);
  EXPECT_GT(far, near);
  EXPECT_EQ(branchDistance(goal, envOf(-1, 0), true), 0.0);
}

TEST(BranchDistance, ConjunctionAddsDisjunctionMins) {
  const auto x = mkVar(kX);
  const auto y = mkVar(kY);
  const auto both =
      expr::andE(expr::eqE(x, cInt(5)), expr::eqE(y, cInt(3)));
  EXPECT_EQ(branchDistance(both, envOf(4, 1), true), 1.0 + 2.0);
  const auto either =
      expr::orE(expr::eqE(x, cInt(5)), expr::eqE(y, cInt(3)));
  EXPECT_EQ(branchDistance(either, envOf(4, 1), true), 1.0);
}

TEST(BranchDistance, NegationFlipsPolarity) {
  const auto goal = expr::notE(expr::leE(mkVar(kX), cInt(10)));
  EXPECT_EQ(branchDistance(goal, envOf(11, 0), true), 0.0);
  EXPECT_GT(branchDistance(goal, envOf(5, 0), true), 0.0);
}

TEST(LocalSearch, SolvesNonlinearSumOfSquares) {
  // x*x + y*y == 1000000 (e.g. 600^2 + 800^2): interval contraction is
  // nearly useless here, but the distance gradient homes right in.
  const auto x = mkVar(kX);
  const auto y = mkVar(kY);
  const auto goal = expr::eqE(
      expr::addE(expr::mulE(x, x), expr::mulE(y, y)), cInt(1000000));
  SolveOptions opt;
  opt.timeBudgetMillis = 2000;
  opt.seed = 11;
  LocalSearchSolver s(opt);
  const auto res = s.solve(goal, {kX, kY});
  ASSERT_EQ(res.status, SolveStatus::kSat);
  EXPECT_TRUE(expr::evaluate(goal, res.model).toBool());
}

TEST(LocalSearch, NeverClaimsUnsat) {
  const auto x = mkVar(kX);
  const auto goal =
      expr::andE(expr::gtE(x, cInt(5)), expr::ltE(x, cInt(5)));
  SolveOptions opt;
  opt.timeBudgetMillis = 30;
  LocalSearchSolver s(opt);
  EXPECT_EQ(s.solve(goal, {kX}).status, SolveStatus::kUnknown);
}

TEST(Portfolio, FallsThroughToSearchOnUnknown) {
  const auto x = mkVar(kX);
  const auto y = mkVar(kY);
  const auto goal = expr::eqE(
      expr::addE(expr::mulE(x, x), expr::mulE(y, y)), cInt(1000000));
  SolveOptions opt;
  opt.timeBudgetMillis = 2000;
  opt.seed = 3;
  opt.maxBoxes = 64;  // cripple the box engine so it reports UNKNOWN
  const auto res = solveWith(SolverKind::kPortfolio, goal, {kX, kY}, opt);
  ASSERT_EQ(res.status, SolveStatus::kSat);
  EXPECT_TRUE(expr::evaluate(goal, res.model).toBool());
}

TEST(Portfolio, KeepsBoxUnsatProofs) {
  const auto x = mkVar(kX);
  const auto goal =
      expr::andE(expr::gtE(x, cInt(5)), expr::ltE(x, cInt(5)));
  SolveOptions opt;
  opt.timeBudgetMillis = 500;
  EXPECT_EQ(solveWith(SolverKind::kPortfolio, goal, {kX}, opt).status,
            SolveStatus::kUnsat);
}

TEST(Portfolio, StcgRunsWithPortfolioEngine) {
  // A model whose interesting branch is a nonlinear equation on inputs:
  // trigger when x*x + y*y is within a thin shell, latched thereafter.
  model::Model m("Shell");
  auto x = m.addInport("x", Type::kInt, -1000, 1000);
  auto y = m.addInport("y", Type::kInt, -1000, 1000);
  auto xx = m.addProduct("xx", {x, x}, "**");
  auto yy = m.addProduct("yy", {y, y}, "**");
  auto sum = m.addSum("sum", {xx, yy}, "++");
  auto inShell =
      m.addCompareToConst("in_shell", sum, model::RelOp::kEq, 1000000.0);
  auto latch = m.addUnitDelayHole("hit", Scalar::b(false));
  auto latched = m.addLogical("latched", model::LogicOp::kOr,
                              {latch, inShell});
  m.bindDelayInput(latch, latched);
  auto one = m.addConstant("one", Scalar::i(1));
  auto zero = m.addConstant("zero", Scalar::i(0));
  m.addOutport("out", m.addSwitch("sw", one, latch, zero,
                                  model::SwitchCriteria::kNotZero, 0.0));

  const auto cm = compile::compile(m);
  gen::GenOptions opt;
  opt.budgetMillis = 4000 * kBudgetScale;
  opt.seed = 21;
  opt.solver.timeBudgetMillis = 150 * kBudgetScale;
  opt.solverKind = SolverKind::kPortfolio;
  gen::StcgGenerator g;
  const auto res = g.generate(cm, opt);
  EXPECT_EQ(res.coverage.decision, 1.0)
      << res.coverage.coveredBranches << "/" << res.coverage.totalBranches;
}

TEST(Portfolio, KindNames) {
  EXPECT_STREQ(solverKindName(SolverKind::kBox), "box");
  EXPECT_STREQ(solverKindName(SolverKind::kLocalSearch), "local-search");
  EXPECT_STREQ(solverKindName(SolverKind::kPortfolio), "portfolio");
}

}  // namespace
}  // namespace stcg::solver
