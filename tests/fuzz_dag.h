// Shared random-DAG fuzz harness for the tape-engine differential tests
// (test_tape.cpp, test_batch_tape.cpp).
//
// Grows pools of well-typed expressions by repeatedly applying random
// productions to random pool members, which yields genuinely shared DAG
// structure (the same subterm feeds many parents). Integer and real
// arithmetic results are clamped through min/max towers so no value chain
// can reach signed-overflow or out-of-int64 territory — the tape evaluates
// untaken kIte arms eagerly, so *every* emitted computation must stay
// defined under UBSAN, not just the taken path.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <utility>
#include <vector>

#include "expr/builder.h"
#include "expr/eval.h"
#include "expr/expr.h"
#include "expr/jit.h"
#include "expr/tape.h"
#include "expr/tape_passes.h"
#include "util/rng.h"

namespace stcg::fuzz {

// Bitwise comparison helpers. Scalar::operator== compares doubles with
// ==, which would miss a NaN-vs-NaN agreement and accept -0.0 == +0.0;
// the tape contract is *bit* identity, so compare payload bits.
inline bool sameBits(double a, double b) {
  std::uint64_t x = 0, y = 0;
  std::memcpy(&x, &a, sizeof a);
  std::memcpy(&y, &b, sizeof b);
  return x == y;
}

inline bool sameScalar(const expr::Scalar& a, const expr::Scalar& b) {
  if (a.type() != b.type()) return false;
  if (a.type() == expr::Type::kReal) return sameBits(a.toReal(), b.toReal());
  return a == b;
}

inline expr::ExprPtr clampInt(expr::ExprPtr e) {
  return expr::minE(expr::maxE(std::move(e), expr::cInt(-100000)),
                    expr::cInt(100000));
}

inline expr::ExprPtr clampReal(expr::ExprPtr e) {
  return expr::minE(expr::maxE(std::move(e), expr::cReal(-1e6)),
                    expr::cReal(1e6));
}

struct FuzzDag {
  std::vector<expr::VarInfo> vars;  // scalar variables, ids 0..7
  std::vector<expr::ExprPtr> bools, ints, reals;
  // Array pools; variable ids 8 (real, width 4) / 9 (int, width 3).
  std::vector<expr::ExprPtr> realArrays, intArrays;
  bool withArrays = false;

  std::vector<expr::ExprPtr>& pool(expr::Type t) {
    return t == expr::Type::kBool ? bools
                                  : (t == expr::Type::kInt ? ints : reals);
  }
};

constexpr expr::VarId kRealArrId = 8;
constexpr expr::VarId kIntArrId = 9;

inline FuzzDag makeFuzzDag(Rng& rng, bool withArrays) {
  using expr::ExprPtr;
  using expr::Scalar;
  using expr::Type;
  FuzzDag d;
  d.withArrays = withArrays;
  d.vars = {
      {0, "b0", Type::kBool, 0, 1},      {1, "b1", Type::kBool, 0, 1},
      {2, "i0", Type::kInt, -10, 10},    {3, "i1", Type::kInt, -10, 10},
      {4, "i2", Type::kInt, -10, 10},    {5, "r0", Type::kReal, -100, 100},
      {6, "r1", Type::kReal, -100, 100}, {7, "r2", Type::kReal, -100, 100},
  };
  for (const auto& v : d.vars) d.pool(v.type).push_back(expr::mkVar(v));
  d.ints.push_back(expr::cInt(rng.uniformInt(-5, 5)));
  d.reals.push_back(expr::cReal(rng.uniformReal(-5.0, 5.0)));
  if (withArrays) {
    d.realArrays.push_back(expr::mkVarArray(kRealArrId, "ar", Type::kReal, 4));
    d.intArrays.push_back(expr::mkVarArray(kIntArrId, "ai", Type::kInt, 3));
    d.realArrays.push_back(expr::cArray(
        Type::kReal,
        {Scalar::r(0.5), Scalar::r(-2.0), Scalar::r(7.25), Scalar::r(3.0)}));
    d.intArrays.push_back(
        expr::cArray(Type::kInt, {Scalar::i(1), Scalar::i(-4), Scalar::i(9)}));
  }

  const auto pick = [&](const std::vector<ExprPtr>& pool) -> const ExprPtr& {
    return pool[rng.index(pool.size())];
  };
  const auto pickNumPool = [&]() -> std::vector<ExprPtr>& {
    return rng.chance(0.5) ? d.ints : d.reals;
  };

  const int kGrow = 80;
  for (int it = 0; it < kGrow; ++it) {
    switch (rng.index(withArrays ? 11 : 8)) {
      case 0:
        d.bools.push_back(expr::notE(pick(d.bools)));
        break;
      case 1: {
        const auto& a = pick(d.bools);
        const auto& b = pick(d.bools);
        switch (rng.index(3)) {
          case 0: d.bools.push_back(expr::andE(a, b)); break;
          case 1: d.bools.push_back(expr::orE(a, b)); break;
          default: d.bools.push_back(expr::xorE(a, b)); break;
        }
        break;
      }
      case 2: {  // scalar ite, same-typed arms
        const Type t = std::vector<Type>{Type::kBool, Type::kInt,
                                         Type::kReal}[rng.index(3)];
        auto& p = d.pool(t);
        p.push_back(expr::iteE(pick(d.bools), pick(p), pick(p)));
        break;
      }
      case 3: {  // relational over numerics (mixed int/real promotes)
        const auto& a = pick(pickNumPool());
        const auto& b = pick(pickNumPool());
        switch (rng.index(6)) {
          case 0: d.bools.push_back(expr::ltE(a, b)); break;
          case 1: d.bools.push_back(expr::leE(a, b)); break;
          case 2: d.bools.push_back(expr::gtE(a, b)); break;
          case 3: d.bools.push_back(expr::geE(a, b)); break;
          case 4: d.bools.push_back(expr::eqE(a, b)); break;
          default: d.bools.push_back(expr::neE(a, b)); break;
        }
        break;
      }
      case 4: {  // integer arithmetic, clamped
        const auto& a = pick(d.ints);
        const auto& b = pick(d.ints);
        ExprPtr e;
        switch (rng.index(7)) {
          case 0: e = expr::addE(a, b); break;
          case 1: e = expr::subE(a, b); break;
          case 2: e = expr::mulE(a, b); break;
          case 3: e = expr::divE(a, b); break;  // guarded: x/0 == 0
          case 4: e = expr::modE(a, b); break;  // guarded: x%0 == 0
          case 5: e = expr::minE(a, b); break;
          default: e = expr::maxE(a, b); break;
        }
        d.ints.push_back(clampInt(std::move(e)));
        break;
      }
      case 5: {  // real arithmetic, clamped
        const auto& a = pick(d.reals);
        const auto& b = pick(d.reals);
        ExprPtr e;
        switch (rng.index(7)) {
          case 0: e = expr::addE(a, b); break;
          case 1: e = expr::subE(a, b); break;
          case 2: e = expr::mulE(a, b); break;
          case 3: e = expr::divE(a, b); break;
          case 4: e = expr::modE(a, b); break;
          case 5: e = expr::minE(a, b); break;
          default: e = expr::maxE(a, b); break;
        }
        d.reals.push_back(clampReal(std::move(e)));
        break;
      }
      case 6: {  // unary numeric (stays within the clamped range)
        auto& p = pickNumPool();
        p.push_back(rng.chance(0.5) ? expr::negE(pick(p))
                                    : expr::absE(pick(p)));
        break;
      }
      case 7: {  // cast between scalar types
        const Type from = std::vector<Type>{Type::kBool, Type::kInt,
                                            Type::kReal}[rng.index(3)];
        const Type to = std::vector<Type>{Type::kBool, Type::kInt,
                                          Type::kReal}[rng.index(3)];
        d.pool(to).push_back(expr::castE(pick(d.pool(from)), to));
        break;
      }
      case 8: {  // select (index clamps at runtime)
        if (rng.chance(0.5)) {
          d.reals.push_back(expr::selectE(pick(d.realArrays), pick(d.ints)));
        } else {
          d.ints.push_back(expr::selectE(pick(d.intArrays), pick(d.ints)));
        }
        break;
      }
      case 9: {  // store
        if (rng.chance(0.5)) {
          d.realArrays.push_back(expr::storeE(pick(d.realArrays),
                                              pick(d.ints), pick(d.reals)));
        } else {
          d.intArrays.push_back(expr::storeE(pick(d.intArrays), pick(d.ints),
                                             pick(d.ints)));
        }
        break;
      }
      default: {  // array ite
        auto& p = rng.chance(0.5) ? d.realArrays : d.intArrays;
        p.push_back(expr::iteE(pick(d.bools), pick(p), pick(p)));
        break;
      }
    }
  }
  return d;
}

// A raw tape and its pass-pipeline-optimized counterpart over the same
// roots, with both slot maps — the optimized-vs-raw differential oracle
// the pass-pipeline fuzz tests execute side by side.
struct TapePair {
  std::shared_ptr<const expr::Tape> raw;
  std::shared_ptr<const expr::Tape> optimized;
  std::vector<expr::SlotRef> rawSlots;  // roots[i] on `raw`
  std::vector<expr::SlotRef> optSlots;  // roots[i] on `optimized`
  expr::TapePassStats stats;
};

inline TapePair buildTapePair(const std::vector<expr::ExprPtr>& roots,
                              const expr::TapePassOptions& opts = {}) {
  expr::TapeBuilder b;
  TapePair p;
  p.rawSlots.reserve(roots.size());
  for (const auto& r : roots) p.rawSlots.push_back(b.addRoot(r));
  p.raw = b.finish();
  expr::OptimizedTape opt = expr::optimizeTape(p.raw, {}, opts);
  p.optimized = std::move(opt.tape);
  p.stats = opt.stats;
  p.optSlots.reserve(p.rawSlots.size());
  for (const auto& s : p.rawSlots) p.optSlots.push_back(opt.remap(s));
  return p;
}

/// Native-code arm for the differential fuzz: compile `tape` through the
/// TapeJit and wrap it in its executor frontend. Returns nullptr when the
/// JIT is unavailable in this environment (no compiler / dlopen) — tests
/// GTEST_SKIP on that rather than fail, mirroring the library's own
/// graceful degradation.
inline std::unique_ptr<expr::JitTapeExecutor> makeJitArm(
    const std::shared_ptr<const expr::Tape>& tape,
    std::string* whyNot = nullptr,
    const expr::TapeJit::Options& opts = {}) {
  auto jit = expr::TapeJit::compile(tape, opts, whyNot);
  if (jit == nullptr) return nullptr;
  return std::make_unique<expr::JitTapeExecutor>(tape, std::move(jit));
}

inline expr::Scalar randomScalarFor(Rng& rng, const expr::VarInfo& v) {
  using expr::Scalar;
  switch (v.type) {
    case expr::Type::kBool: return Scalar::b(rng.chance(0.5));
    case expr::Type::kInt: return Scalar::i(rng.uniformInt(-10, 10));
    case expr::Type::kReal: return Scalar::r(rng.uniformReal(-100.0, 100.0));
  }
  return Scalar::r(0);
}

inline expr::Env randomEnv(Rng& rng, const FuzzDag& d) {
  using expr::Scalar;
  expr::Env env;
  env.reserve(10);
  for (const auto& v : d.vars) env.set(v.id, randomScalarFor(rng, v));
  if (d.withArrays) {
    std::vector<Scalar> ar;
    for (int i = 0; i < 4; ++i) {
      ar.push_back(Scalar::r(rng.uniformReal(-50.0, 50.0)));
    }
    env.setArray(kRealArrId, std::move(ar));
    std::vector<Scalar> ai;
    for (int i = 0; i < 3; ++i) {
      ai.push_back(Scalar::i(rng.uniformInt(-20, 20)));
    }
    env.setArray(kIntArrId, std::move(ai));
  }
  return env;
}

/// One random element whose *type* is also random — bound arrays keep
/// elements uncast, so a mixed vector drives every select over the
/// var-bound arrays through the per-lane dynamic path and forces the
/// batch executor's tag planes out of their uniform fast path.
inline expr::Scalar randomMixedElem(Rng& rng) {
  using expr::Scalar;
  switch (rng.index(3)) {
    case 0: return Scalar::b(rng.chance(0.5));
    case 1: return Scalar::i(rng.uniformInt(-20, 20));
    default: return Scalar::r(rng.uniformReal(-50.0, 50.0));
  }
}

inline std::vector<expr::Scalar> randomMixedArray(Rng& rng, int n) {
  std::vector<expr::Scalar> v;
  v.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) v.push_back(randomMixedElem(rng));
  return v;
}

/// randomEnv with mixed-element-type array bindings (uniform ones with
/// probability `uniformChance`, so uniform<->mixed plane transitions are
/// also exercised).
inline expr::Env randomEnvMixedArrays(Rng& rng, const FuzzDag& d,
                                      double uniformChance = 0.25) {
  using expr::Scalar;
  expr::Env env;
  env.reserve(10);
  for (const auto& v : d.vars) env.set(v.id, randomScalarFor(rng, v));
  if (d.withArrays) {
    if (rng.chance(uniformChance)) {
      std::vector<Scalar> ar;
      for (int i = 0; i < 4; ++i) {
        ar.push_back(Scalar::r(rng.uniformReal(-50.0, 50.0)));
      }
      env.setArray(kRealArrId, std::move(ar));
    } else {
      env.setArray(kRealArrId, randomMixedArray(rng, 4));
    }
    if (rng.chance(uniformChance)) {
      std::vector<Scalar> ai;
      for (int i = 0; i < 3; ++i) {
        ai.push_back(Scalar::i(rng.uniformInt(-20, 20)));
      }
      env.setArray(kIntArrId, std::move(ai));
    } else {
      env.setArray(kIntArrId, randomMixedArray(rng, 3));
    }
  }
  return env;
}

}  // namespace stcg::fuzz
