// Tests for the interval reachability analysis and dead-branch
// pre-verification (the paper's Discussion-section suggestion).
#include <gtest/gtest.h>

#include "analysis/reachability.h"
#include "benchmodels/benchmodels.h"
#include "compile/compiler.h"
#include "expr/builder.h"
#include "model/model.h"
#include "sim/simulator.h"
#include "stcg/stcg_generator.h"

namespace stcg::analysis {
namespace {

using expr::Scalar;
using expr::Type;
using model::Model;

TEST(IntervalEvalTest, ScalarOpsUnderEnv) {
  IntervalEnv env;
  env.set(0, interval::Interval(2, 4));
  IntervalEvaluator eval(env);
  const auto x = expr::mkVar({0, "x", Type::kInt, -100, 100});
  EXPECT_EQ(eval.evalScalar(expr::addE(x, expr::cInt(1))),
            interval::Interval(3, 5));
  EXPECT_TRUE(
      eval.evalScalar(expr::gtE(x, expr::cInt(10))).isFalse());
  EXPECT_TRUE(eval.evalScalar(expr::geE(x, expr::cInt(2))).isTrue());
}

TEST(IntervalEvalTest, UnboundInputUsesDeclaredDomain) {
  IntervalEnv env;
  IntervalEvaluator eval(env);
  const auto x = expr::mkVar({0, "x", Type::kInt, 3, 9});
  EXPECT_EQ(eval.evalScalar(x), interval::Interval(3, 9));
}

TEST(IntervalEvalTest, ArrayStateBindsElementwise) {
  IntervalEnv env;
  env.setArray(0, {interval::Interval(0, 1), interval::Interval(5, 5)});
  IntervalEvaluator eval(env);
  const auto arr = expr::mkVarArray(0, "a", Type::kInt, 2);
  const auto i = expr::mkVar({1, "i", Type::kInt, 0, 1});
  const auto sel = expr::selectE(arr, i);
  EXPECT_EQ(eval.evalScalar(sel), interval::Interval(0, 5));
}

TEST(Invariant, SaturatedCounterStaysBounded) {
  Model m("t");
  auto inc = m.addInport("inc", Type::kBool, 0, 1);
  auto count = m.addUnitDelayHole("count", Scalar::i(0));
  auto one = m.addConstant("one", Scalar::i(1));
  auto zero = m.addConstant("zero", Scalar::i(0));
  auto amount = m.addSwitch("amount", one, inc, zero,
                            model::SwitchCriteria::kNotZero, 0.0);
  auto next = m.addSum("next", {count, amount}, "++");
  m.bindDelayInput(count, m.addSaturation("sat", next, 0, 10));
  m.addOutport("y", count);
  const auto cm = compile::compile(m);

  const auto inv = computeStateInvariant(cm);
  EXPECT_TRUE(inv.converged);
  const auto dom = inv.env.get(cm.states[0].id);
  EXPECT_EQ(dom, interval::Interval(0, 10));
}

TEST(Invariant, ChartActiveStateBoundedByStateCount) {
  const auto cm = compile::compile(bench::buildAfc());
  const auto inv = computeStateInvariant(cm);
  for (const auto& sv : cm.states) {
    if (sv.name.find(".active") == std::string::npos) continue;
    const auto dom = inv.env.get(sv.id);
    EXPECT_GE(dom.lo(), 0.0);
    EXPECT_LE(dom.hi(), 4.0);  // the AFC chart has 5 states
  }
}

TEST(DeadBranches, LedlcDefaultArmIsProvenDead) {
  const auto cm = compile::compile(bench::buildLedlc());
  const auto report = findDeadBranches(cm);
  bool foundDefault = false;
  for (const int b : report.deadBranches) {
    const auto& br = cm.branches[static_cast<std::size_t>(b)];
    const auto& d = cm.decisions[static_cast<std::size_t>(br.decision)];
    if (d.name.find("duty_by_mode") != std::string::npos &&
        br.label.find("default") != std::string::npos) {
      foundDefault = true;
    }
  }
  EXPECT_TRUE(foundDefault)
      << "the unreachable Switch-Case default arm must be proven dead";
}

TEST(DeadBranches, UnreachableThresholdIsProvenDead) {
  // A saturated counter in [0,10] can never exceed 50.
  Model m("t");
  auto inc = m.addInport("inc", Type::kBool, 0, 1);
  auto count = m.addUnitDelayHole("count", Scalar::i(0));
  auto one = m.addConstant("one", Scalar::i(1));
  auto zero = m.addConstant("zero", Scalar::i(0));
  auto amount = m.addSwitch("amount", one, inc, zero,
                            model::SwitchCriteria::kNotZero, 0.0);
  auto next = m.addSum("next", {count, amount}, "++");
  m.bindDelayInput(count, m.addSaturation("sat", next, 0, 10));
  auto never = m.addCompareToConst("never", count, model::RelOp::kGt, 50.0);
  m.addOutport("y", m.addSwitch("dead", one, never, zero,
                                model::SwitchCriteria::kNotZero, 0.0));
  const auto cm = compile::compile(m);
  const auto report = findDeadBranches(cm);
  bool deadTrueArm = false;
  for (const int b : report.deadBranches) {
    const auto& br = cm.branches[static_cast<std::size_t>(b)];
    const auto& d = cm.decisions[static_cast<std::size_t>(br.decision)];
    if (d.name.find("dead") != std::string::npos && br.label == "true") {
      deadTrueArm = true;
    }
  }
  EXPECT_TRUE(deadTrueArm);
}

// Soundness sweep: no branch that random execution actually covers may
// ever be flagged dead.
class DeadBranchSoundness : public ::testing::TestWithParam<std::string> {};

TEST_P(DeadBranchSoundness, NeverFlagsACoveredBranch) {
  const auto cm = compile::compile(bench::buildBenchModel(GetParam()));
  const auto report = findDeadBranches(cm);
  coverage::CoverageTracker cov(cm);
  sim::Simulator sim(cm);
  Rng rng(4242);
  for (int i = 0; i < 400; ++i) {
    (void)sim.step(sim::randomInput(cm, rng), &cov);
  }
  for (const int b : report.deadBranches) {
    EXPECT_FALSE(cov.branchCovered(b))
        << GetParam() << ": branch " << b << " ("
        << cm.decisions[static_cast<std::size_t>(
                            cm.branches[static_cast<std::size_t>(b)].decision)]
               .name
        << ") was executed but proven dead";
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, DeadBranchSoundness,
                         ::testing::Values("CPUTask", "AFC", "TWC",
                                           "NICProtocol", "UTPC", "LANSwitch",
                                           "LEDLC", "TCP"),
                         [](const auto& info) { return info.param; });

TEST(StcgPruning, PruningSavesSolveCallsWithoutLosingCoverage) {
  const auto cm = compile::compile(bench::buildLedlc());
  gen::GenOptions opt;
  opt.budgetMillis = 1200;
  opt.seed = 5;
  gen::StcgGenerator g;
  const auto plain = g.generate(cm, opt);
  opt.pruneProvablyDead = true;
  const auto pruned = g.generate(cm, opt);
  EXPECT_GT(pruned.stats.goalsPruned, 0);
  // Same (or better) coverage with pruning: dead goals contributed nothing.
  EXPECT_GE(pruned.coverage.decision + 1e-9, plain.coverage.decision);
}

TEST(Invariant, RenderIsHumanReadable) {
  const auto cm = compile::compile(bench::buildAfc());
  const auto inv = computeStateInvariant(cm);
  const auto text = renderInvariant(cm, inv);
  EXPECT_NE(text.find("State invariant"), std::string::npos);
  EXPECT_NE(text.find("AFC/"), std::string::npos);
}

}  // namespace
}  // namespace stcg::analysis
