// Custom test-objective tests: registration, compilation, satisfaction by
// execution, and STCG targeting them as goals.
#include <gtest/gtest.h>

#include "compile/compiler.h"
#include "model/model.h"
#include "sim/simulator.h"
#include "stcg/stcg_generator.h"

namespace stcg {
namespace {

using expr::Scalar;
using expr::Type;
using model::Model;

// A counter model with an objective that requires five enabled steps:
// "counter reaches exactly 5".
Model makeObjectiveModel() {
  Model m("Obj");
  auto en = m.addInport("en", Type::kBool, 0, 1);
  auto x = m.addInport("x", Type::kInt, 0, 100000);
  auto count = m.addUnitDelayHole("count", Scalar::i(0));
  auto one = m.addConstant("one", Scalar::i(1));
  auto zero = m.addConstant("zero", Scalar::i(0));
  auto amount = m.addSwitch("amount", one, en, zero,
                            model::SwitchCriteria::kNotZero, 0.0);
  auto next = m.addSum("next", {count, amount}, "++");
  m.bindDelayInput(count, m.addSaturation("sat", next, 0, 9));
  auto atFive = m.addCompareToConst("at_five", count, model::RelOp::kEq, 5.0);
  // The x-part makes the objective unreachable by side-effect: only a
  // solver aiming at it will pick x == 77777.
  auto magic = m.addCompareToConst("magic", x, model::RelOp::kEq, 77777.0);
  auto both = m.addLogical("both", model::LogicOp::kAnd, {atFive, magic});
  m.addTestObjective("reach_five", both);
  m.addOutport("count", count);
  return m;
}

TEST(Objectives, CompiledIntoTheModel) {
  const auto cm = compile::compile(makeObjectiveModel());
  ASSERT_EQ(cm.objectives.size(), 1u);
  EXPECT_EQ(cm.objectives[0].name, "Obj/reach_five");
  EXPECT_NE(cm.objectives[0].cond, nullptr);
}

TEST(Objectives, SatisfiedByExecution) {
  const auto cm = compile::compile(makeObjectiveModel());
  sim::Simulator s(cm);
  coverage::CoverageTracker cov(cm);
  for (int i = 0; i < 5; ++i) {
    (void)s.step({Scalar::b(true), Scalar::i(77777)}, &cov);
    EXPECT_FALSE(cov.objectiveCovered(0)) << "too early at step " << i;
  }
  // count == 5 this step, with the magic input.
  const auto res = s.step({Scalar::b(true), Scalar::i(77777)}, &cov);
  EXPECT_TRUE(cov.objectiveCovered(0));
  EXPECT_TRUE(res.foundNewCoverage());
  const auto [met, total] = cov.objectiveCounts();
  EXPECT_EQ(met, 1);
  EXPECT_EQ(total, 1);
}

TEST(Objectives, RegionScopedObjectiveNeedsActiveRegion) {
  Model m("ObjR");
  auto en = m.addInport("en", Type::kBool, 0, 1);
  auto x = m.addInport("x", Type::kInt, 0, 100);
  const auto region = m.addEnabled("gate", en);
  {
    model::RegionScope scope(m, region);
    auto big = m.addCompareToConst("big", x, model::RelOp::kGt, 50.0);
    m.addTestObjective("big_while_enabled", big);
  }
  m.addOutport("y", x);
  const auto cm = compile::compile(m);
  sim::Simulator s(cm);
  coverage::CoverageTracker cov(cm);
  (void)s.step({Scalar::b(false), Scalar::i(99)}, &cov);
  EXPECT_FALSE(cov.objectiveCovered(0)) << "region inactive";
  (void)s.step({Scalar::b(true), Scalar::i(99)}, &cov);
  EXPECT_TRUE(cov.objectiveCovered(0));
}

TEST(Objectives, StcgTargetsAndSatisfiesThem) {
  const auto cm = compile::compile(makeObjectiveModel());
  gen::GenOptions opt;
  opt.budgetMillis = 3000;
  opt.seed = 9;
  gen::StcgGenerator g;
  const auto res = g.generate(cm, opt);
  const auto replay = gen::replaySuite(cm, res.tests);
  EXPECT_TRUE(replay.objectiveCovered(0))
      << "STCG must reach count==5 through the state tree";
  // The goal's label should show up on some emitted test case.
  bool found = false;
  for (const auto& t : res.tests) {
    if (t.goalLabel.find("reach_five") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Objectives, ReportListsThem) {
  const auto cm = compile::compile(makeObjectiveModel());
  coverage::CoverageTracker cov(cm);
  EXPECT_NE(cov.report().find("Objectives: 0/1"), std::string::npos);
}

}  // namespace
}  // namespace stcg
