// Generator behaviour tests: STCG mechanics on crafted models, baseline
// sanity, replay fidelity, determinism, goal derivation, and text export.
#include <gtest/gtest.h>

#include "baselines/simcotest_like.h"
#include "baselines/sldv_like.h"
#include "compile/compiler.h"
#include "expr/builder.h"
#include "model/model.h"
#include <fstream>

#include "stcg/export.h"
#include "stcg/stcg_generator.h"

namespace stcg::gen {
namespace {

using expr::Scalar;
using expr::Type;
using model::Model;

// A model whose deep branch needs a remembered secret: unlock fires only
// when `code` equals the value latched two steps ago while `arm` was set.
Model makeLatchModel() {
  Model m("Latch");
  auto code = m.addInport("code", Type::kInt, 0, 100000);
  auto arm = m.addInport("arm", Type::kBool, 0, 1);
  auto latch = m.addUnitDelayHole("latched", Scalar::i(-1));
  auto latchNext = m.addSwitch("latch_next", code, arm, latch,
                               model::SwitchCriteria::kNotZero, 0.0);
  m.bindDelayInput(latch, latchNext);
  auto match = m.addRelational("match", model::RelOp::kEq, code, latch);
  auto valid = m.addCompareToConst("valid", latch, model::RelOp::kGe, 0.0);
  auto unlock = m.addLogical("unlock", model::LogicOp::kAnd, {match, valid});
  auto one = m.addConstant("one", Scalar::i(1));
  auto zero = m.addConstant("zero", Scalar::i(0));
  m.addOutport("y", m.addSwitch("out", one, unlock, zero,
                                model::SwitchCriteria::kNotZero, 0.0));
  return m;
}

GenOptions fastOptions(std::uint64_t seed = 5) {
  GenOptions opt;
  opt.budgetMillis = 2500;
  opt.seed = seed;
  opt.solver.timeBudgetMillis = 20;
  return opt;
}

TEST(Goals, BranchConditionAndMcdcGoalsDerived) {
  const auto cm = compile::compile(makeLatchModel());
  const auto branchOnly = buildGoals(cm, false, false);
  EXPECT_EQ(branchOnly.size(), cm.branches.size());
  const auto withConds = buildGoals(cm, true, false);
  EXPECT_EQ(withConds.size(),
            cm.branches.size() + 2 * static_cast<std::size_t>(
                                         cm.conditionCount()));
  const auto withMcdc = buildGoals(cm, true, true);
  EXPECT_GT(withMcdc.size(), withConds.size());
  for (const auto& g : withMcdc) {
    EXPECT_NE(g.pathConstraint, nullptr);
    EXPECT_FALSE(g.label.empty());
  }
}

TEST(Goals, SortedTraversalRespectsDepth) {
  const auto cm = compile::compile(makeLatchModel());
  const auto goals = buildGoals(cm, true, true);
  for (const auto& g : goals) EXPECT_GE(g.depth, 0);
}

TEST(Stcg, SolvesTheLatchEquality) {
  // Random search needs a 1-in-100001 id match after arming; STCG reads
  // the latched value from the state tree and solves code == latched.
  const auto cm = compile::compile(makeLatchModel());
  StcgGenerator g;
  const auto res = g.generate(cm, fastOptions());
  EXPECT_EQ(res.coverage.decision, 1.0)
      << res.coverage.coveredBranches << "/" << res.coverage.totalBranches;
  EXPECT_GT(res.stats.solveSat, 0);
}

TEST(Stcg, DeterministicForFixedSeed) {
  const auto cm = compile::compile(makeLatchModel());
  StcgGenerator g;
  GenOptions opt = fastOptions(77);
  // Remove the wall-clock dependence: give a budget large enough that both
  // runs cover everything and stop on goal completion.
  opt.budgetMillis = 10000;
  const auto a = g.generate(cm, opt);
  const auto b = g.generate(cm, opt);
  ASSERT_EQ(a.tests.size(), b.tests.size());
  for (std::size_t i = 0; i < a.tests.size(); ++i) {
    EXPECT_EQ(a.tests[i].steps, b.tests[i].steps) << "test " << i;
  }
  EXPECT_EQ(a.coverage.decision, b.coverage.decision);
}

TEST(Stcg, ReplayedSuiteReproducesOnlineCoverage) {
  const auto cm = compile::compile(makeLatchModel());
  StcgGenerator g;
  const auto res = g.generate(cm, fastOptions());
  const auto replay = replaySuite(cm, res.tests);
  // Every branch claimed covered must be covered by replaying the suite
  // from reset — the paper's Signal-Builder-fair measurement.
  EXPECT_EQ(summarize(replay).decision, res.coverage.decision);
  EXPECT_EQ(summarize(replay).condition, res.coverage.condition);
}

TEST(Stcg, NoRandomFallbackStillSolvesShallowGoals) {
  const auto cm = compile::compile(makeLatchModel());
  GenOptions opt = fastOptions();
  opt.useRandomFallback = false;
  StcgGenerator g;
  const auto res = g.generate(cm, opt);
  EXPECT_GT(res.coverage.decision, 0.4);
  EXPECT_EQ(res.stats.randomSequences, 0);
}

TEST(Stcg, RootOnlyCannotReachStateDependentBranch) {
  const auto cm = compile::compile(makeLatchModel());
  GenOptions opt = fastOptions();
  opt.solveOnAllNodes = false;
  opt.useRandomFallback = false;  // isolate the solving dimension
  StcgGenerator g;
  const auto res = g.generate(cm, opt);
  // unlock requires latched >= 0, impossible at the initial state.
  EXPECT_LT(res.coverage.decision, 1.0);
}

TEST(Stcg, EventsCarryMonotonicCoverage) {
  const auto cm = compile::compile(makeLatchModel());
  StcgGenerator g;
  const auto res = g.generate(cm, fastOptions());
  double last = 0.0;
  for (const auto& e : res.events) {
    EXPECT_GE(e.decisionCoverage, last);
    last = e.decisionCoverage;
    EXPECT_GE(e.timeSec, 0.0);
  }
}

TEST(SldvLike, CoversViaUnrollingAndReplays) {
  const auto cm = compile::compile(makeLatchModel());
  GenOptions opt = fastOptions();
  opt.maxUnrollDepth = 3;
  opt.solver.timeBudgetMillis = 120;
  SldvLikeGenerator g;
  const auto res = g.generate(cm, opt);
  // Depth 2-3 suffices for arm-then-match; the unroller must find it.
  EXPECT_EQ(res.coverage.decision, 1.0);
  for (const auto& t : res.tests) {
    EXPECT_LE(t.steps.size(), 3u);
    EXPECT_EQ(t.origin, TestOrigin::kSolved);
  }
}

TEST(SldvLike, DepthOneOnlyGetsShallowBranches) {
  const auto cm = compile::compile(makeLatchModel());
  GenOptions opt = fastOptions();
  opt.maxUnrollDepth = 1;
  SldvLikeGenerator g;
  const auto res = g.generate(cm, opt);
  EXPECT_LT(res.coverage.decision, 1.0);
  EXPECT_GT(res.coverage.decision, 0.0);
}

TEST(SimCoTestLike, FindsShallowBranchesAndEmitsOnNewCoverage) {
  const auto cm = compile::compile(makeLatchModel());
  GenOptions opt = fastOptions();
  opt.budgetMillis = 800;
  SimCoTestLikeGenerator g;
  const auto res = g.generate(cm, opt);
  EXPECT_GT(res.coverage.decision, 0.3);
  EXPECT_FALSE(res.tests.empty());
  for (const auto& t : res.tests) {
    EXPECT_EQ(t.origin, TestOrigin::kRandom);
  }
}

TEST(Export, RenderedSuiteIsCompleteAndParseable) {
  const auto cm = compile::compile(makeLatchModel());
  StcgGenerator g;
  const auto res = g.generate(cm, fastOptions());
  const auto text = renderTestSuite(cm, res.tests);
  EXPECT_NE(text.find("# Test suite for model Latch"), std::string::npos);
  EXPECT_NE(text.find("[test 0]"), std::string::npos);
  EXPECT_NE(text.find("code="), std::string::npos);
  // One step line per step of every test.
  std::size_t stepLines = 0;
  for (std::size_t pos = 0; (pos = text.find("step", pos)) != std::string::npos;
       ++pos) {
    if (text.compare(pos, 5, "steps") != 0) ++stepLines;
  }
  std::size_t expected = 0;
  for (const auto& t : res.tests) expected += t.steps.size();
  EXPECT_EQ(stepLines, expected);
}

TEST(Export, WriteToFileRoundTrips) {
  const auto cm = compile::compile(makeLatchModel());
  StcgGenerator g;
  GenOptions opt = fastOptions();
  opt.budgetMillis = 300;
  const auto res = g.generate(cm, opt);
  const std::string path = "/tmp/stcg_export_test.txt";
  ASSERT_TRUE(writeTestSuite(path, cm, res.tests));
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::string first;
  std::getline(f, first);
  EXPECT_EQ(first, "# Test suite for model Latch");
}

TEST(Replay, EmptySuiteCoversNothing) {
  const auto cm = compile::compile(makeLatchModel());
  const auto cov = replaySuite(cm, {});
  EXPECT_EQ(cov.coveredBranchCount(), 0);
}

}  // namespace
}  // namespace stcg::gen
