// Resumable campaign core tests: the serialization codecs (scalars,
// snapshots, coverage tracker, exclusions), checkpoint save/load with
// version/signature/checksum rejection, the golden snapshot-hash pins for
// the benchmark models, state-tree dedup under forced hash collisions,
// and the headline contract — a campaign killed at round k and resumed
// from its checkpoint finishes bit-identical to one never interrupted,
// across jobs × batch × engine.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "benchmodels/benchmodels.h"
#include "compile/compiler.h"
#include "coverage/coverage.h"
#include "model/model.h"
#include "sim/simulator.h"
#include "sim/snapshot_io.h"
#include "stcg/campaign.h"
#include "stcg/checkpoint.h"
#include "stcg/stcg_generator.h"

namespace stcg::gen {
namespace {

using expr::Scalar;
using expr::Type;
using model::Model;

std::string tmpPath(const std::string& name) {
  return ::testing::TempDir() + name;
}

// ----- snapshot_io: exact scalar/value/snapshot round-trips ---------------

expr::Scalar roundTripScalar(const expr::Scalar& s) {
  std::ostringstream os;
  sim::writeScalar(os, s);
  std::istringstream is(os.str());
  return sim::readScalar(is);
}

std::uint64_t bitsOf(double d) {
  std::uint64_t u = 0;
  std::memcpy(&u, &d, sizeof u);
  return u;
}

TEST(SnapshotIo, RealsRoundTripBitExactly) {
  const double denormal = std::numeric_limits<double>::denorm_min();
  const double values[] = {0.0,
                           -0.0,
                           1.0 / 3.0,
                           -1e308,
                           denormal,
                           -denormal,
                           std::numeric_limits<double>::infinity(),
                           -std::numeric_limits<double>::infinity(),
                           std::numeric_limits<double>::max()};
  for (const double v : values) {
    const auto back = roundTripScalar(Scalar::r(v));
    EXPECT_EQ(bitsOf(back.toReal()), bitsOf(v)) << v;
  }
}

TEST(SnapshotIo, NanPayloadRoundTripsBitExactly) {
  // snapshotHash hashes the raw 64-bit pattern, so a NaN that loses its
  // payload across save/load would silently break state-tree dedup.
  const std::uint64_t payloads[] = {0x7ff8000000000001ULL,
                                    0xfff8deadbeef1234ULL,
                                    0x7ff0000000000042ULL};
  for (const std::uint64_t bits : payloads) {
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof v);
    ASSERT_TRUE(std::isnan(v));
    const auto back = roundTripScalar(Scalar::r(v));
    EXPECT_EQ(bitsOf(back.toReal()), bits);
  }
}

TEST(SnapshotIo, IntsAndBoolsRoundTrip) {
  const std::int64_t ints[] = {0, -1, 42, INT64_MIN, INT64_MAX};
  for (const std::int64_t v : ints) {
    const auto back = roundTripScalar(Scalar::i(v));
    EXPECT_EQ(back.type(), Type::kInt);
    EXPECT_EQ(back.toInt(), v);
  }
  EXPECT_EQ(roundTripScalar(Scalar::b(true)).toBool(), true);
  EXPECT_EQ(roundTripScalar(Scalar::b(false)).toBool(), false);
}

TEST(SnapshotIo, SnapshotsAndInputVectorsRoundTrip) {
  const sim::StateSnapshot snap{
      expr::Value(Scalar::i(7)),
      expr::Value(Type::kReal,
                  {Scalar::r(1.5), Scalar::r(-0.0), Scalar::r(2e-308)}),
      expr::Value(Scalar::b(true))};
  std::ostringstream os;
  sim::writeSnapshot(os, snap);
  std::istringstream is(os.str());
  const auto back = sim::readSnapshot(is);
  EXPECT_TRUE(back == snap);
  EXPECT_EQ(sim::snapshotHash(back), sim::snapshotHash(snap));

  const sim::InputVector in{Scalar::i(3), Scalar::r(0.25), Scalar::b(false)};
  std::ostringstream os2;
  sim::writeInputVector(os2, in);
  std::istringstream is2(os2.str());
  EXPECT_EQ(sim::readInputVector(is2), in);
}

TEST(SnapshotIo, MalformedInputThrowsTypedError) {
  const char* bad[] = {"", "X3", "I", "Iabc", "R0x1p", "S 2 V i 1 I1",
                       "V q 1 I1", "B2"};
  for (const char* text : bad) {
    std::istringstream is(text);
    EXPECT_THROW((void)sim::readScalar(is), expr::EvalError) << text;
  }
  std::istringstream shortSnap("S 3 V i 1 I1");
  EXPECT_THROW((void)sim::readSnapshot(shortSnap), expr::EvalError);
}

// ----- Golden snapshot hashes (satellite: pins hashScalar/snapshotHash) ---

TEST(SnapshotHash, GoldenInitialStateHashesForBenchModels) {
  // Literal pins of sim::snapshotHash over every benchmark model's initial
  // snapshot. A change here means the hash function or an initial state
  // changed — both invalidate existing checkpoints (the loader verifies
  // recorded node hashes), so this must be a deliberate, versioned event.
  const struct {
    const char* name;
    std::uint64_t hash;
  } golden[] = {
      {"CPUTask", 0x579eb28e29f1b459ULL},
      {"AFC", 0x9a942a2d1556e65bULL},
      {"TWC", 0x7017a79caa537c21ULL},
      {"NICProtocol", 0x9963174fc5eab7e2ULL},
      {"UTPC", 0x7017a79caa537c21ULL},
      {"LANSwitch", 0xd944f50f54de9303ULL},
      {"LEDLC", 0x8d5c1e331b18e2f5ULL},
      {"TCP", 0xaee54f373aa5b402ULL},
  };
  for (const auto& g : golden) {
    const auto cm = compile::compile(bench::buildBenchModel(g.name));
    const sim::Simulator s(cm, sim::EvalEngine::kTape);
    EXPECT_EQ(sim::snapshotHash(s.snapshot()), g.hash) << g.name;
  }
}

// ----- StateTree under deliberate hash collisions -------------------------

TEST(StateTree, CollidingHashesNeverMergeDistinctStates) {
  const sim::StateSnapshot root{expr::Value(Scalar::i(0))};
  const sim::StateSnapshot s1{expr::Value(Scalar::i(1))};
  const sim::StateSnapshot s2{expr::Value(Scalar::i(2))};
  StateTree tree(root);
  // Force both distinct snapshots into the same hash bucket.
  const std::uint64_t kForced = 0xc0111de1c0111de1ULL;
  const int id1 = tree.addChild(0, {}, s1, kForced);
  const int id2 = tree.addChild(0, {}, s2, kForced);
  ASSERT_NE(id1, id2);
  // findByState compares full state values inside the bucket: each
  // snapshot resolves to its own node, a third value to neither.
  EXPECT_EQ(tree.findByState(s1, kForced), id1);
  EXPECT_EQ(tree.findByState(s2, kForced), id2);
  const sim::StateSnapshot s3{expr::Value(Scalar::i(3))};
  EXPECT_EQ(tree.findByState(s3, kForced), -1);
}

TEST(StateTree, AttemptedPairDedupIsByHashByDesign) {
  // The global (stateHash, goal) set is deliberately hash-keyed: a
  // collision merges attempt marks (documented tradeoff — it can only
  // skip one solve attempt, deterministically). Pin that semantic so a
  // future "fix" is a conscious decision.
  const sim::StateSnapshot root{expr::Value(Scalar::i(0))};
  const sim::StateSnapshot s1{expr::Value(Scalar::i(1))};
  const sim::StateSnapshot s2{expr::Value(Scalar::i(2))};
  StateTree tree(root);
  const std::uint64_t kForced = 77;
  const int id1 = tree.addChild(0, {}, s1, kForced);
  const int id2 = tree.addChild(0, {}, s2, kForced);
  tree.markAttempted(id1, 5);
  EXPECT_TRUE(tree.isAttempted(id2, 5));
  EXPECT_FALSE(tree.isAttempted(id2, 6));
  EXPECT_EQ(tree.attemptedPairCount(), 1u);
}

// ----- Coverage tracker serialization -------------------------------------

Model makeLatchModel() {
  Model m("Latch");
  auto code = m.addInport("code", Type::kInt, 0, 100000);
  auto arm = m.addInport("arm", Type::kBool, 0, 1);
  auto latch = m.addUnitDelayHole("latched", Scalar::i(-1));
  auto latchNext = m.addSwitch("latch_next", code, arm, latch,
                               model::SwitchCriteria::kNotZero, 0.0);
  m.bindDelayInput(latch, latchNext);
  auto match = m.addRelational("match", model::RelOp::kEq, code, latch);
  auto valid = m.addCompareToConst("valid", latch, model::RelOp::kGe, 0.0);
  auto unlock = m.addLogical("unlock", model::LogicOp::kAnd, {match, valid});
  auto one = m.addConstant("one", Scalar::i(1));
  auto zero = m.addConstant("zero", Scalar::i(0));
  m.addOutport("y", m.addSwitch("out", one, unlock, zero,
                                model::SwitchCriteria::kNotZero, 0.0));
  return m;
}

TEST(CoverageSerialization, TrackerRoundTripsByteIdentically) {
  const auto cm = compile::compile(makeLatchModel());
  coverage::CoverageTracker tracker(cm);
  sim::Simulator sim(cm, sim::EvalEngine::kTape);
  Rng rng(123);
  for (int i = 0; i < 40; ++i) {
    (void)sim.step(sim::randomInput(cm, rng), &tracker);
  }
  std::ostringstream first;
  tracker.serializeState(first);

  coverage::CoverageTracker restored(cm);
  std::istringstream is(first.str());
  restored.restoreState(is);
  std::ostringstream second;
  restored.serializeState(second);
  EXPECT_EQ(first.str(), second.str());
  EXPECT_EQ(restored.decisionCoverage(), tracker.decisionCoverage());
  EXPECT_EQ(restored.conditionCoverage(), tracker.conditionCoverage());
  EXPECT_EQ(restored.mcdcCoverage(), tracker.mcdcCoverage());
}

TEST(CoverageSerialization, RestoreRejectsWrongShape) {
  const auto cm = compile::compile(makeLatchModel());
  coverage::CoverageTracker tracker(cm);
  std::ostringstream os;
  tracker.serializeState(os);

  // A tracker for a structurally different model must refuse the blob.
  Model tiny("tiny");
  auto a = tiny.addInport("a", Type::kBool, 0, 1);
  auto one = tiny.addConstant("one", Scalar::i(1));
  auto zero = tiny.addConstant("zero", Scalar::i(0));
  tiny.addOutport("y", tiny.addSwitch("sw", one, a, zero,
                                      model::SwitchCriteria::kNotZero, 0.0));
  const auto cmTiny = compile::compile(tiny);
  coverage::CoverageTracker other(cmTiny);
  std::istringstream is(os.str());
  EXPECT_THROW(other.restoreState(is), expr::EvalError);
}

TEST(CoverageSerialization, ExclusionsRoundTrip) {
  coverage::Exclusions excl;
  excl.branches = {1, 4, 7};
  excl.objectives = {0};
  excl.conditionSlots = {{2, 0, true}, {2, 1, false}};
  excl.mcdcSlots = {{3, 1}};
  std::ostringstream os;
  coverage::writeExclusions(os, excl);
  std::istringstream is(os.str());
  const auto back = coverage::readExclusions(is);
  EXPECT_TRUE(back == excl);
}

// ----- Checkpoint save/load ------------------------------------------------

GenOptions latchOptions() {
  GenOptions opt;
  opt.budgetMillis = 60000;  // non-binding; runs stop on the round cap
  opt.seed = 77;
  opt.solver.timeBudgetMillis = 50;
  opt.maxRounds = 8;
  return opt;
}

/// Drop the lines that legitimately differ between two saves of the same
/// state (wall-clock elapsed time feeds the `elapsed` line and, through
/// it, the checksum).
std::string withoutVolatileLines(const std::string& text) {
  std::istringstream is(text);
  std::ostringstream os;
  std::string line;
  while (std::getline(is, line)) {
    if (line.rfind("elapsed ", 0) == 0) continue;
    if (line.rfind("checksum ", 0) == 0) continue;
    os << line << '\n';
  }
  return os.str();
}

std::string slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

TEST(Checkpoint, SaveLoadSaveIsByteStable) {
  const auto cm = compile::compile(makeLatchModel());
  const GenOptions opt = latchOptions();
  const std::string p1 = tmpPath("ck_stable_1");
  const std::string p2 = tmpPath("ck_stable_2");

  Campaign c1(cm, opt);
  for (int i = 0; i < 4 && !c1.finished(); ++i) c1.runRound();
  c1.saveCheckpoint(p1);

  Campaign c2(cm, opt);
  c2.restore(p1);
  c2.saveCheckpoint(p2);
  EXPECT_EQ(withoutVolatileLines(slurp(p1)), withoutVolatileLines(slurp(p2)));
}

TEST(Checkpoint, RejectsCorruptTruncatedStaleAndMissing) {
  const auto cm = compile::compile(makeLatchModel());
  const GenOptions opt = latchOptions();
  const std::string good = tmpPath("ck_good");
  {
    Campaign c(cm, opt);
    for (int i = 0; i < 3 && !c.finished(); ++i) c.runRound();
    c.saveCheckpoint(good);
  }
  const std::string blob = slurp(good);
  ASSERT_FALSE(blob.empty());

  const auto expectRejected = [&](const std::string& path,
                                  const char* needle) {
    Campaign c(cm, opt);
    try {
      c.restore(path);
      FAIL() << "expected EvalError for " << path;
    } catch (const expr::EvalError& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };

  // Missing file.
  expectRejected(tmpPath("ck_does_not_exist"), "cannot open");

  // Truncations at several byte lengths: never UB, always a typed error.
  for (const std::size_t len :
       {std::size_t{0}, std::size_t{10}, blob.size() / 2, blob.size() - 3}) {
    const std::string p = tmpPath("ck_trunc");
    std::ofstream(p, std::ios::binary) << blob.substr(0, len);
    Campaign c(cm, opt);
    EXPECT_THROW(c.restore(p), expr::EvalError) << "length " << len;
  }

  // Single flipped byte in the middle.
  {
    std::string bad = blob;
    bad[bad.size() / 2] ^= 0x40;
    const std::string p = tmpPath("ck_flip");
    std::ofstream(p, std::ios::binary) << bad;
    expectRejected(p, "checksum mismatch");
  }

  // Trailing junk after the checksum line: a full extra line hits the
  // trailing-data check, an unterminated tail the final-newline check.
  {
    const std::string p = tmpPath("ck_tail");
    std::ofstream(p, std::ios::binary) << blob << "junk\n";
    expectRejected(p, "trailing data");
  }
  {
    const std::string p = tmpPath("ck_tail2");
    std::ofstream(p, std::ios::binary) << blob << "junk";
    expectRejected(p, "end with a newline");
  }

  // Future format version (valid checksum, so the version check fires).
  {
    std::string body = "stcg-checkpoint v99\n";
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char ch : body) {
      h ^= static_cast<unsigned char>(ch);
      h *= 0x100000001b3ULL;
    }
    char buf[24];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(h));
    const std::string p = tmpPath("ck_version");
    std::ofstream(p, std::ios::binary)
        << body << "checksum " << buf << '\n';
    expectRejected(p, "unsupported format version");
  }

  // Stale trajectory-relevant options (different seed).
  {
    GenOptions other = opt;
    other.seed = 78;
    Campaign c(cm, other);
    try {
      c.restore(good);
      FAIL() << "expected options-signature rejection";
    } catch (const expr::EvalError& e) {
      EXPECT_NE(std::string(e.what()).find("options signature"),
                std::string::npos)
          << e.what();
    }
  }

  // Different model.
  {
    const auto cmOther = compile::compile(bench::buildBenchModel("AFC"));
    Campaign c(cmOther, opt);
    try {
      c.restore(good);
      FAIL() << "expected model-signature rejection";
    } catch (const expr::EvalError& e) {
      EXPECT_NE(std::string(e.what()).find("model signature"),
                std::string::npos)
          << e.what();
    }
  }

  // Execution-strategy knobs and stop conditions are NOT in the
  // signature: a checkpoint saved under one jobs/batch/budget must load
  // under another.
  {
    GenOptions other = opt;
    other.jobs = 4;
    other.batch = 1;
    other.budgetMillis = 123456;
    other.maxRounds = 20;
    Campaign c(cm, other);
    EXPECT_NO_THROW(c.restore(good));
  }
}

// ----- Resume equivalence --------------------------------------------------

void expectIdentical(const GenResult& a, const GenResult& b,
                     const std::string& what) {
  ASSERT_EQ(a.tests.size(), b.tests.size()) << what;
  for (std::size_t i = 0; i < a.tests.size(); ++i) {
    EXPECT_EQ(a.tests[i].steps, b.tests[i].steps) << what << " test " << i;
    EXPECT_EQ(a.tests[i].origin, b.tests[i].origin) << what << " test " << i;
    EXPECT_EQ(a.tests[i].goalLabel, b.tests[i].goalLabel)
        << what << " test " << i;
  }
  ASSERT_EQ(a.events.size(), b.events.size()) << what;
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].decisionCoverage, b.events[i].decisionCoverage)
        << what << " event " << i;
    EXPECT_EQ(a.events[i].origin, b.events[i].origin)
        << what << " event " << i;
  }
  EXPECT_EQ(a.coverage.decision, b.coverage.decision) << what;
  EXPECT_EQ(a.coverage.condition, b.coverage.condition) << what;
  EXPECT_EQ(a.coverage.mcdc, b.coverage.mcdc) << what;
  EXPECT_EQ(a.coverage.coveredBranches, b.coverage.coveredBranches) << what;
  EXPECT_EQ(a.stats.solveCalls, b.stats.solveCalls) << what;
  EXPECT_EQ(a.stats.solveSat, b.stats.solveSat) << what;
  EXPECT_EQ(a.stats.solveUnsat, b.stats.solveUnsat) << what;
  EXPECT_EQ(a.stats.solveUnknown, b.stats.solveUnknown) << what;
  EXPECT_EQ(a.stats.stepsExecuted, b.stats.stepsExecuted) << what;
  EXPECT_EQ(a.stats.treeNodes, b.stats.treeNodes) << what;
  EXPECT_EQ(a.stats.randomSequences, b.stats.randomSequences) << what;
}

GenResult runUninterrupted(const compile::CompiledModel& cm,
                           const GenOptions& opt) {
  Campaign c(cm, opt);
  while (!c.finished()) c.runRound();
  return c.finish();
}

GenResult runKilledAtRound(const compile::CompiledModel& cm,
                           const GenOptions& opt, int k,
                           const std::string& path) {
  {
    Campaign c(cm, opt);
    for (int i = 0; i < k && !c.finished(); ++i) c.runRound();
    c.saveCheckpoint(path);
    // The first process "dies" here; nothing after the save survives.
  }
  Campaign c(cm, opt);
  c.restore(path);
  while (!c.finished()) c.runRound();
  return c.finish();
}

TEST(ResumeEquivalence, BitIdenticalAcrossJobsBatchEngine) {
  // The headline contract: run-to-round-k -> serialize -> fresh process
  // deserialize -> run-to-end equals the uninterrupted run, for every
  // jobs × batch × engine combination. The latch model keeps
  // unsatisfiable MCDC goals alive, so random fallback rounds (the
  // batched path) genuinely execute before the round cap stops the run.
  const auto cm = compile::compile(makeLatchModel());
  for (const auto engine : {sim::EvalEngine::kTape, sim::EvalEngine::kJit}) {
    for (const int jobs : {1, 4}) {
      for (const int batch : {1, 8}) {
        GenOptions opt = latchOptions();
        opt.simEngine = engine;
        opt.jobs = jobs;
        opt.batch = batch;
        opt.solver.batch = batch;
        const std::string what =
            std::string(engine == sim::EvalEngine::kTape ? "tape" : "jit") +
            " jobs=" + std::to_string(jobs) +
            " batch=" + std::to_string(batch);
        const GenResult ref = runUninterrupted(cm, opt);
        for (const int k : {1, 3, 6}) {
          const GenResult resumed = runKilledAtRound(
              cm, opt, k, tmpPath("ck_resume_" + std::to_string(k)));
          expectIdentical(ref, resumed,
                          what + " killed at round " + std::to_string(k));
        }
      }
    }
  }
}

TEST(ResumeEquivalence, CheckpointFromOneConfigResumesUnderAnother) {
  // Save under jobs=1/batch=8, resume under jobs=4/batch=1 (and the
  // reverse) — execution strategy is free to change across the kill.
  const auto cm = compile::compile(makeLatchModel());
  GenOptions optA = latchOptions();
  optA.jobs = 1;
  optA.batch = 8;
  GenOptions optB = latchOptions();
  optB.jobs = 4;
  optB.batch = 1;
  const GenResult ref = runUninterrupted(cm, optA);
  expectIdentical(ref, runUninterrupted(cm, optB), "A vs B uninterrupted");

  const std::string path = tmpPath("ck_cross");
  {
    Campaign c(cm, optA);
    for (int i = 0; i < 3 && !c.finished(); ++i) c.runRound();
    c.saveCheckpoint(path);
  }
  Campaign c(cm, optB);
  c.restore(path);
  while (!c.finished()) c.runRound();
  GenResult crossed = c.finish();
  expectIdentical(ref, crossed, "saved under A, resumed under B");
}

TEST(ResumeEquivalence, GeneratorLevelCheckpointEveryRound) {
  // Through the public StcgGenerator API: checkpoint every round, then
  // resume from the final checkpoint with a higher round cap; compare to
  // an uninterrupted run with the same cap.
  const auto cm = compile::compile(makeLatchModel());
  GenOptions full = latchOptions();
  full.maxRounds = 10;
  StcgGenerator g;
  const GenResult ref = g.generate(cm, full);

  GenOptions staged = latchOptions();
  staged.maxRounds = 4;
  staged.checkpointPath = tmpPath("ck_gen");
  staged.checkpointEveryRounds = 1;
  (void)g.generate(cm, staged);

  staged.maxRounds = 10;
  staged.resume = true;
  const GenResult resumed = g.generate(cm, staged);
  expectIdentical(ref, resumed, "generator-level resume");
}

TEST(ResumeEquivalence, MaxRoundsIsDeterministic) {
  const auto cm = compile::compile(makeLatchModel());
  const GenOptions opt = latchOptions();
  expectIdentical(runUninterrupted(cm, opt), runUninterrupted(cm, opt),
                  "repeat");
}

// ----- Option validation ---------------------------------------------------

TEST(GenOptionsValidation, ChecksCheckpointKnobs) {
  GenOptions opt;
  opt.checkpointEveryRounds = 0;
  EXPECT_THROW(validateGenOptions(opt), expr::EvalError);
  opt.checkpointEveryRounds = 1'000'001;
  EXPECT_THROW(validateGenOptions(opt), expr::EvalError);
  opt = {};
  opt.maxRounds = -1;
  EXPECT_THROW(validateGenOptions(opt), expr::EvalError);
  opt = {};
  opt.resume = true;  // resume without a checkpoint path
  EXPECT_THROW(validateGenOptions(opt), expr::EvalError);
  opt = {};
  opt.checkpointPath = "/nonexistent-dir-zz/sub/ck";
  try {
    validateGenOptions(opt);
    FAIL() << "expected unwritable-path rejection";
  } catch (const expr::EvalError& e) {
    EXPECT_NE(std::string(e.what()).find("not writable"), std::string::npos)
        << e.what();
  }
}

TEST(GenOptionsValidation, WritabilityProbeLeavesNoFileBehind) {
  GenOptions opt;
  opt.checkpointPath = tmpPath("ck_probe_artifact");
  validateGenOptions(opt);
  EXPECT_FALSE(static_cast<bool>(std::ifstream(opt.checkpointPath)))
      << "probe must not leave an empty file a resume-if-exists caller "
         "would then try to load";
}

}  // namespace
}  // namespace stcg::gen
