// Semantics tests for the model IR and compiler: one golden test per block
// kind, region gating, charts, branch/decision structure, and the
// compiler's error paths.
#include <gtest/gtest.h>

#include "compile/compiler.h"
#include "expr/builder.h"
#include "model/model.h"
#include "sim/simulator.h"

namespace stcg {
namespace {

using expr::Scalar;
using expr::Type;
using model::Model;
using model::PortRef;
using model::RegionScope;

/// Build a one-in/one-out model around `wire`, simulate one step with
/// input `in`, and return the single output.
Scalar evalBlock(const std::function<PortRef(Model&, PortRef)>& wire,
                 Scalar in, Type inType = Type::kReal, double lo = -100,
                 double hi = 100) {
  Model m("t");
  auto x = m.addInport("x", inType, lo, hi);
  m.addOutport("y", wire(m, x));
  const auto cm = compile::compile(m);
  sim::Simulator s(cm);
  (void)s.step({in}, nullptr);
  return s.lastOutputs()[0];
}

TEST(Blocks, SumWithMixedSigns) {
  Model m("t");
  auto a = m.addInport("a", Type::kInt, -10, 10);
  auto b = m.addInport("b", Type::kInt, -10, 10);
  auto c = m.addInport("c", Type::kInt, -10, 10);
  m.addOutport("y", m.addSum("s", {a, b, c}, "+-+"));
  const auto cm = compile::compile(m);
  sim::Simulator s(cm);
  (void)s.step({Scalar::i(5), Scalar::i(3), Scalar::i(2)}, nullptr);
  EXPECT_EQ(s.lastOutputs()[0], Scalar::i(4));
}

TEST(Blocks, GainScales) {
  EXPECT_EQ(evalBlock([](Model& m, PortRef x) { return m.addGain("g", x, 2.5); },
                      Scalar::r(4.0)),
            Scalar::r(10.0));
}

TEST(Blocks, ProductWithDivision) {
  Model m("t");
  auto a = m.addInport("a", Type::kReal, -10, 10);
  auto b = m.addInport("b", Type::kReal, -10, 10);
  m.addOutport("y", m.addProduct("p", {a, b}, "*/"));
  const auto cm = compile::compile(m);
  sim::Simulator s(cm);
  (void)s.step({Scalar::r(6.0), Scalar::r(3.0)}, nullptr);
  EXPECT_EQ(s.lastOutputs()[0], Scalar::r(2.0));
  // Guarded division: dividing by zero yields zero, not a crash.
  (void)s.step({Scalar::r(6.0), Scalar::r(0.0)}, nullptr);
  EXPECT_EQ(s.lastOutputs()[0], Scalar::r(0.0));
}

TEST(Blocks, AbsMinMaxSaturation) {
  EXPECT_EQ(evalBlock([](Model& m, PortRef x) { return m.addAbs("a", x); },
                      Scalar::r(-3.5)),
            Scalar::r(3.5));
  EXPECT_EQ(
      evalBlock(
          [](Model& m, PortRef x) { return m.addSaturation("s", x, -1, 1); },
          Scalar::r(7.0)),
      Scalar::r(1.0));
  Model m("t");
  auto a = m.addInport("a", Type::kReal, -10, 10);
  auto b = m.addInport("b", Type::kReal, -10, 10);
  m.addOutport("lo", m.addMinMax("mn", model::MinMaxOp::kMin, a, b));
  m.addOutport("hi", m.addMinMax("mx", model::MinMaxOp::kMax, a, b));
  const auto cm = compile::compile(m);
  sim::Simulator s(cm);
  (void)s.step({Scalar::r(2.0), Scalar::r(5.0)}, nullptr);
  EXPECT_EQ(s.lastOutputs()[0], Scalar::r(2.0));
  EXPECT_EQ(s.lastOutputs()[1], Scalar::r(5.0));
}

TEST(Blocks, RelationalAndLogicalOps) {
  Model m("t");
  auto a = m.addInport("a", Type::kInt, -10, 10);
  auto b = m.addInport("b", Type::kInt, -10, 10);
  auto lt = m.addRelational("lt", model::RelOp::kLt, a, b);
  auto ge = m.addRelational("ge", model::RelOp::kGe, a, b);
  m.addOutport("and", m.addLogical("and", model::LogicOp::kAnd, {lt, ge}));
  m.addOutport("or", m.addLogical("or", model::LogicOp::kOr, {lt, ge}));
  m.addOutport("nand", m.addLogical("nand", model::LogicOp::kNand, {lt, ge}));
  m.addOutport("nor", m.addLogical("nor", model::LogicOp::kNor, {lt, ge}));
  m.addOutport("xor", m.addLogical("xor", model::LogicOp::kXor, {lt, ge}));
  m.addOutport("not", m.addLogical("not", model::LogicOp::kNot, {lt}));
  const auto cm = compile::compile(m);
  sim::Simulator s(cm);
  (void)s.step({Scalar::i(1), Scalar::i(2)}, nullptr);  // lt=T, ge=F
  EXPECT_EQ(s.lastOutputs()[0], Scalar::b(false));  // and
  EXPECT_EQ(s.lastOutputs()[1], Scalar::b(true));   // or
  EXPECT_EQ(s.lastOutputs()[2], Scalar::b(true));   // nand
  EXPECT_EQ(s.lastOutputs()[3], Scalar::b(false));  // nor
  EXPECT_EQ(s.lastOutputs()[4], Scalar::b(true));   // xor
  EXPECT_EQ(s.lastOutputs()[5], Scalar::b(false));  // not lt
}

TEST(Blocks, SwitchCriteriaVariants) {
  Model m("t");
  auto ctrl = m.addInport("ctrl", Type::kReal, -10, 10);
  auto one = m.addConstant("one", Scalar::i(1));
  auto zero = m.addConstant("zero", Scalar::i(0));
  m.addOutport("gt", m.addSwitch("gt", one, ctrl, zero,
                                 model::SwitchCriteria::kGreaterThan, 2.0));
  m.addOutport("ge", m.addSwitch("ge", one, ctrl, zero,
                                 model::SwitchCriteria::kGreaterEqual, 2.0));
  m.addOutport("nz", m.addSwitch("nz", one, ctrl, zero,
                                 model::SwitchCriteria::kNotZero, 0.0));
  const auto cm = compile::compile(m);
  sim::Simulator s(cm);
  (void)s.step({Scalar::r(2.0)}, nullptr);
  EXPECT_EQ(s.lastOutputs()[0].toInt(), 0);  // 2 > 2 false
  EXPECT_EQ(s.lastOutputs()[1].toInt(), 1);  // 2 >= 2 true
  EXPECT_EQ(s.lastOutputs()[2].toInt(), 1);  // nonzero
  (void)s.step({Scalar::r(0.0)}, nullptr);
  EXPECT_EQ(s.lastOutputs()[2].toInt(), 0);
}

TEST(Blocks, MultiportSwitchSelectsAndDefaults) {
  Model m("t");
  auto ctrl = m.addInport("ctrl", Type::kInt, -5, 10);
  auto d0 = m.addConstant("d0", Scalar::i(100));
  auto d1 = m.addConstant("d1", Scalar::i(200));
  auto d2 = m.addConstant("d2", Scalar::i(300));
  m.addOutport("y", m.addMultiportSwitch("mp", ctrl, {d0, d1, d2}));
  const auto cm = compile::compile(m);
  sim::Simulator s(cm);
  (void)s.step({Scalar::i(1)}, nullptr);
  EXPECT_EQ(s.lastOutputs()[0], Scalar::i(200));
  (void)s.step({Scalar::i(7)}, nullptr);  // out of range -> last port
  EXPECT_EQ(s.lastOutputs()[0], Scalar::i(300));
}

TEST(Blocks, UnitDelayHoldsOneStep) {
  Model m("t");
  auto x = m.addInport("x", Type::kInt, -10, 10);
  m.addOutport("y", m.addUnitDelay("d", x, Scalar::i(-1)));
  const auto cm = compile::compile(m);
  sim::Simulator s(cm);
  (void)s.step({Scalar::i(5)}, nullptr);
  EXPECT_EQ(s.lastOutputs()[0], Scalar::i(-1));  // initial value
  (void)s.step({Scalar::i(9)}, nullptr);
  EXPECT_EQ(s.lastOutputs()[0], Scalar::i(5));
}

TEST(Blocks, DelayLineShiftsNSteps) {
  Model m("t");
  auto x = m.addInport("x", Type::kInt, 0, 100);
  m.addOutport("y", m.addDelayLine("d", x, 3, Scalar::i(0)));
  const auto cm = compile::compile(m);
  sim::Simulator s(cm);
  const int inputs[] = {11, 22, 33, 44, 55};
  const int expected[] = {0, 0, 0, 11, 22};
  for (int i = 0; i < 5; ++i) {
    (void)s.step({Scalar::i(inputs[i])}, nullptr);
    EXPECT_EQ(s.lastOutputs()[0].asInt(), expected[i]) << "step " << i;
  }
}

TEST(Blocks, Lookup1DInterpolatesAndClamps) {
  const auto table = [](Model& m, PortRef x) {
    return m.addLookup1D("l", x, {0, 10, 20}, {0, 100, 400});
  };
  EXPECT_EQ(evalBlock(table, Scalar::r(5.0)), Scalar::r(50.0));     // interp
  EXPECT_EQ(evalBlock(table, Scalar::r(15.0)), Scalar::r(250.0));   // interp
  EXPECT_EQ(evalBlock(table, Scalar::r(-5.0)), Scalar::r(0.0));     // clamp
  EXPECT_EQ(evalBlock(table, Scalar::r(99.0)), Scalar::r(400.0));   // clamp
  EXPECT_EQ(evalBlock(table, Scalar::r(10.0)), Scalar::r(100.0));   // knot
}

TEST(Blocks, DataStoreReadWriteOrdering) {
  // Read sees the pre-step value; writes commit for the next step.
  Model m("t");
  auto x = m.addInport("x", Type::kInt, 0, 100);
  const int store = m.addDataStore("s", Type::kInt, 1, Scalar::i(7));
  auto rd = m.addDataStoreRead("rd", store);
  m.addDataStoreWrite("wr", store, x);
  m.addOutport("y", rd);
  const auto cm = compile::compile(m);
  sim::Simulator s(cm);
  (void)s.step({Scalar::i(42)}, nullptr);
  EXPECT_EQ(s.lastOutputs()[0], Scalar::i(7));  // initial value visible
  (void)s.step({Scalar::i(0)}, nullptr);
  EXPECT_EQ(s.lastOutputs()[0], Scalar::i(42));  // write committed
}

TEST(Blocks, DataStoreArrayElemAccess) {
  Model m("t");
  auto idx = m.addInport("idx", Type::kInt, 0, 3);
  auto val = m.addInport("val", Type::kInt, 0, 100);
  const int store = m.addDataStore("arr", Type::kInt, 4, Scalar::i(0));
  auto rd = m.addDataStoreReadElem("rd", store, idx);
  m.addDataStoreWriteElem("wr", store, idx, val);
  m.addOutport("y", rd);
  const auto cm = compile::compile(m);
  sim::Simulator s(cm);
  (void)s.step({Scalar::i(2), Scalar::i(55)}, nullptr);
  EXPECT_EQ(s.lastOutputs()[0], Scalar::i(0));
  (void)s.step({Scalar::i(2), Scalar::i(0)}, nullptr);
  EXPECT_EQ(s.lastOutputs()[0], Scalar::i(55));
  (void)s.step({Scalar::i(1), Scalar::i(0)}, nullptr);
  EXPECT_EQ(s.lastOutputs()[0], Scalar::i(0));  // other slot untouched
}

// ---------- Regions ----------

TEST(Regions, IfElseGatesStateUpdates) {
  Model m("t");
  auto en = m.addInport("en", Type::kBool, 0, 1);
  const int store = m.addDataStore("cnt", Type::kInt, 1, Scalar::i(0));
  auto cnt = m.addDataStoreRead("rd", store);
  auto one = m.addConstant("one", Scalar::i(1));
  const auto ifr = m.addIfElse("gate", en);
  {
    RegionScope scope(m, ifr.thenRegion);
    auto inc = m.addSum("inc", {cnt, one}, "++");
    m.addDataStoreWrite("wr", store, inc);
  }
  m.addOutport("y", cnt);
  const auto cm = compile::compile(m);
  sim::Simulator s(cm);
  (void)s.step({Scalar::b(true)}, nullptr);
  (void)s.step({Scalar::b(false)}, nullptr);  // held
  (void)s.step({Scalar::b(true)}, nullptr);
  (void)s.step({Scalar::b(false)}, nullptr);
  EXPECT_EQ(s.lastOutputs()[0], Scalar::i(2));  // two enabled steps counted
}

TEST(Regions, MergeSelectsActiveArmOrFallback) {
  Model m("t");
  auto sel = m.addInport("sel", Type::kInt, 0, 5);
  const auto regions = m.addSwitchCase("sc", sel, {{0}, {1}}, false);
  std::vector<std::pair<model::RegionId, PortRef>> arms;
  {
    RegionScope r0(m, regions[0]);
    arms.emplace_back(regions[0], m.addConstant("a", Scalar::i(10)));
  }
  {
    RegionScope r1(m, regions[1]);
    arms.emplace_back(regions[1], m.addConstant("b", Scalar::i(20)));
  }
  m.addOutport("y", m.addMerge("mg", arms, Scalar::i(-1)));
  const auto cm = compile::compile(m);
  sim::Simulator s(cm);
  (void)s.step({Scalar::i(0)}, nullptr);
  EXPECT_EQ(s.lastOutputs()[0], Scalar::i(10));
  (void)s.step({Scalar::i(1)}, nullptr);
  EXPECT_EQ(s.lastOutputs()[0], Scalar::i(20));
  (void)s.step({Scalar::i(4)}, nullptr);  // no arm
  EXPECT_EQ(s.lastOutputs()[0], Scalar::i(-1));
}

TEST(Regions, NestedRegionsComposeDepthAndActivation) {
  Model m("t");
  auto a = m.addInport("a", Type::kBool, 0, 1);
  auto b = m.addInport("b", Type::kBool, 0, 1);
  const int store = m.addDataStore("hits", Type::kInt, 1, Scalar::i(0));
  auto hits = m.addDataStoreRead("rd", store);
  auto one = m.addConstant("one", Scalar::i(1));
  const auto outer = m.addIfElse("outer", a);
  {
    RegionScope so(m, outer.thenRegion);
    const auto inner = m.addIfElse("inner", b);
    {
      RegionScope si(m, inner.thenRegion);
      auto inc = m.addSum("inc", {hits, one}, "++");
      m.addDataStoreWrite("wr", store, inc);
    }
  }
  m.addOutport("y", hits);
  const auto cm = compile::compile(m);

  // Depth structure: outer arms at depth 0, inner at depth 1.
  int maxDepth = 0;
  for (const auto& br : cm.branches) maxDepth = std::max(maxDepth, br.depth);
  EXPECT_EQ(maxDepth, 1);

  sim::Simulator s(cm);
  (void)s.step({Scalar::b(true), Scalar::b(true)}, nullptr);    // counted
  (void)s.step({Scalar::b(false), Scalar::b(true)}, nullptr);   // outer off
  (void)s.step({Scalar::b(true), Scalar::b(false)}, nullptr);   // inner off
  (void)s.step({Scalar::b(true), Scalar::b(true)}, nullptr);    // counted
  (void)s.step({Scalar::b(false), Scalar::b(false)}, nullptr);
  EXPECT_EQ(s.lastOutputs()[0], Scalar::i(2));
}

TEST(Regions, InactiveRegionDecisionsDoNotCount) {
  Model m("t");
  auto en = m.addInport("en", Type::kBool, 0, 1);
  auto x = m.addInport("x", Type::kReal, -10, 10);
  const auto region = m.addEnabled("gate", en);
  {
    RegionScope scope(m, region);
    auto one = m.addConstant("one", Scalar::i(1));
    auto zero = m.addConstant("zero", Scalar::i(0));
    auto pos = m.addCompareToConst("pos", x, model::RelOp::kGt, 0.0);
    m.addOutport("y", m.addSwitch("sw", one, pos, zero,
                                  model::SwitchCriteria::kNotZero, 0.0));
  }
  const auto cm = compile::compile(m);
  sim::Simulator s(cm);
  coverage::CoverageTracker cov(cm);
  // Disabled: only the enable decision's "disabled" arm counts.
  (void)s.step({Scalar::b(false), Scalar::r(5.0)}, &cov);
  EXPECT_EQ(cov.coveredBranchCount(), 1);
  // Enabled: the switch decision now records too.
  (void)s.step({Scalar::b(true), Scalar::r(5.0)}, &cov);
  EXPECT_EQ(cov.coveredBranchCount(), 3);
}

// ---------- Charts ----------

TEST(Charts, TransitionPriorityAndActions) {
  Model m("t");
  auto go = m.addInport("go", Type::kBool, 0, 1);
  model::ChartBuilder cb(m, "c");
  auto cGo = cb.input("go", Type::kBool);
  const int ticks = cb.addVar("ticks", Scalar::i(0));
  const int sA = cb.addState("A");
  const int sB = cb.addState("B");
  // Two transitions from A; the first declared must win when both fire.
  cb.addTransition(sA, sB, cGo,
                   {model::ChartAssign{
                       ticks, expr::addE(cb.varRef(ticks), expr::cInt(10))}});
  cb.addTransition(sA, sA, cGo,
                   {model::ChartAssign{
                       ticks, expr::addE(cb.varRef(ticks), expr::cInt(1))}});
  cb.addTransition(sB, sA, expr::notE(cGo));
  cb.exposeOutput(ticks);
  cb.exposeActiveState();
  auto outs = m.addChart("chart", cb.build(), {go});
  m.addOutport("ticks", outs[0]);
  m.addOutport("state", outs[1]);
  const auto cm = compile::compile(m);
  sim::Simulator s(cm);
  (void)s.step({Scalar::b(true)}, nullptr);
  EXPECT_EQ(s.lastOutputs()[0], Scalar::i(10));  // first transition won
  EXPECT_EQ(s.lastOutputs()[1], Scalar::i(1));   // now in B
}

TEST(Charts, DuringActionsRunWhenNoTransitionFires) {
  Model m("t");
  auto go = m.addInport("go", Type::kBool, 0, 1);
  model::ChartBuilder cb(m, "c");
  auto cGo = cb.input("go", Type::kBool);
  const int count = cb.addVar("count", Scalar::i(0));
  const int sA = cb.addState("A");
  const int sB = cb.addState("B");
  cb.addTransition(sA, sB, cGo);
  cb.addDuring(sA, count, expr::addE(cb.varRef(count), expr::cInt(1)));
  cb.exposeOutput(count);
  auto outs = m.addChart("chart", cb.build(), {go});
  m.addOutport("count", outs[0]);
  const auto cm = compile::compile(m);
  sim::Simulator s(cm);
  (void)s.step({Scalar::b(false)}, nullptr);
  (void)s.step({Scalar::b(false)}, nullptr);
  EXPECT_EQ(s.lastOutputs()[0], Scalar::i(2));  // two during ticks
  (void)s.step({Scalar::b(true)}, nullptr);     // fires: during suppressed
  EXPECT_EQ(s.lastOutputs()[0], Scalar::i(2));
  (void)s.step({Scalar::b(false)}, nullptr);    // in B: no during action
  EXPECT_EQ(s.lastOutputs()[0], Scalar::i(2));
}

TEST(Charts, TransitionsBecomeDecisionsWithGuardAtoms) {
  Model m("t");
  auto x = m.addInport("x", Type::kInt, 0, 100);
  model::ChartBuilder cb(m, "c");
  auto cX = cb.input("x", Type::kInt);
  const int sA = cb.addState("A");
  const int sB = cb.addState("B");
  cb.addTransition(sA, sB,
                   expr::andE(expr::gtE(cX, expr::cInt(5)),
                              expr::ltE(cX, expr::cInt(10))),
                   {}, "window");
  cb.addTransition(sB, sA, expr::eqE(cX, expr::cInt(0)));
  cb.exposeActiveState();
  auto outs = m.addChart("chart", cb.build(), {x});
  m.addOutport("s", outs[0]);
  const auto cm = compile::compile(m);
  int chartDecisions = 0;
  for (const auto& d : cm.decisions) {
    if (d.kind == compile::DecisionKind::kChartTransition) {
      ++chartDecisions;
      if (d.name.find("window") != std::string::npos) {
        EXPECT_EQ(d.conditions.size(), 2u);  // the two relational atoms
      }
    }
  }
  EXPECT_EQ(chartDecisions, 2);
}

// ---------- Compiler error paths and structure ----------

TEST(Compiler, AlgebraicLoopIsRejected) {
  Model m("t");
  auto x = m.addInport("x", Type::kInt, 0, 10);
  // sum depends on itself through no delay: s = x + s.
  // Construct via a forward reference: sum's second operand is its own id.
  const PortRef selfRef{static_cast<model::BlockId>(1), 0};
  m.addOutport("y", m.addSum("s", {x, selfRef}, "++"));
  EXPECT_THROW((void)compile::compile(m), compile::CompileError);
}

TEST(Compiler, UnboundDelayHoleFailsValidation) {
  Model m("t");
  (void)m.addUnitDelayHole("d", Scalar::i(0));
  EXPECT_FALSE(m.validate().empty());
  EXPECT_THROW((void)compile::compile(m), compile::CompileError);
}

TEST(Compiler, ScalarStoreElemAccessRejected) {
  Model m("t");
  auto x = m.addInport("x", Type::kInt, 0, 10);
  const int store = m.addDataStore("s", Type::kInt, 1, Scalar::i(0));
  (void)m.addDataStoreReadElem("rd", store, x);
  EXPECT_THROW((void)compile::compile(m), compile::CompileError);
}

TEST(Compiler, PathConstraintIncludesAncestors) {
  Model m("t");
  auto sel = m.addInport("sel", Type::kInt, 0, 3);
  auto x = m.addInport("x", Type::kReal, -10, 10);
  const auto regions = m.addSwitchCase("sc", sel, {{0}, {1}}, true);
  PortRef inner;
  {
    RegionScope r0(m, regions[0]);
    auto one = m.addConstant("one", Scalar::i(1));
    auto zero = m.addConstant("zero", Scalar::i(0));
    auto pos = m.addCompareToConst("pos", x, model::RelOp::kGt, 0.0);
    inner = m.addSwitch("sw", one, pos, zero,
                        model::SwitchCriteria::kNotZero, 0.0);
  }
  m.addOutport("y", inner);
  const auto cm = compile::compile(m);

  // The switch's true-branch path constraint must require sel == 0 too.
  const compile::Branch* swTrue = nullptr;
  for (const auto& br : cm.branches) {
    const auto& d = cm.decisions[static_cast<std::size_t>(br.decision)];
    if (d.kind == compile::DecisionKind::kSwitch && br.label == "true") {
      swTrue = &br;
    }
  }
  ASSERT_NE(swTrue, nullptr);
  EXPECT_EQ(swTrue->depth, 1);
  expr::Env env;
  env.set(cm.inputs[0].info.id, Scalar::i(1));  // sel = 1: wrong region
  env.set(cm.inputs[1].info.id, Scalar::r(5.0));
  EXPECT_FALSE(expr::evaluate(swTrue->pathConstraint, env).toBool());
  env.set(cm.inputs[0].info.id, Scalar::i(0));  // sel = 0: active
  EXPECT_TRUE(expr::evaluate(swTrue->pathConstraint, env).toBool());
}

TEST(Compiler, DecisionArmsAreExhaustiveAndExclusive) {
  const auto cm = compile::compile([&] {
    Model m("t");
    auto sel = m.addInport("sel", Type::kInt, 0, 9);
    auto d0 = m.addConstant("d0", Scalar::i(1));
    auto d1 = m.addConstant("d1", Scalar::i(2));
    auto d2 = m.addConstant("d2", Scalar::i(3));
    m.addOutport("y", m.addMultiportSwitch("mp", sel, {d0, d1, d2}));
    (void)m.addSwitchCase("sc", sel, {{0, 1}, {2}}, false);
    return m;
  }());
  expr::Env env;
  for (int v = 0; v <= 9; ++v) {
    env.set(cm.inputs[0].info.id, Scalar::i(v));
    for (const auto& d : cm.decisions) {
      int hits = 0;
      for (const auto& arm : d.armConds) {
        if (expr::evaluate(arm, env).toBool()) ++hits;
      }
      EXPECT_EQ(hits, 1) << d.name << " at sel=" << v;
    }
  }
}

TEST(Compiler, InitialStateEnvMatchesDeclaredInits) {
  Model m("t");
  auto x = m.addInport("x", Type::kInt, 0, 10);
  (void)m.addUnitDelay("d", x, Scalar::i(42));
  (void)m.addDataStore("arr", Type::kReal, 3, Scalar::r(1.5));
  const auto cm = compile::compile(m);
  const auto env = cm.initialStateEnv();
  for (const auto& sv : cm.states) {
    if (sv.width == 1) {
      EXPECT_TRUE(env.has(sv.id));
    } else {
      EXPECT_TRUE(env.hasArray(sv.id));
      EXPECT_EQ(env.getArray(sv.id).size(), 3u);
    }
  }
}

}  // namespace
}  // namespace stcg
