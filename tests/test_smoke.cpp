// End-to-end smoke tests: build small stateful models, compile, simulate,
// solve, and run all three generators against them.
#include <gtest/gtest.h>

#include "baselines/simcotest_like.h"
#include "baselines/sldv_like.h"
#include "compile/compiler.h"
#include "model/model.h"
#include "stcg/stcg_generator.h"

namespace stcg {
namespace {

using expr::Scalar;
using expr::Type;

// A saturating counter: increments when `inc` is true; output `high`
// becomes 1 once count > 3 — a branch needing at least 4 warm-up steps.
model::Model makeCounter() {
  model::Model m("Counter");
  auto inc = m.addInport("inc", Type::kBool, 0, 1);
  auto count = m.addUnitDelayHole("count", Scalar::i(0));
  auto one = m.addConstant("one", Scalar::i(1));
  auto zero = m.addConstant("zero", Scalar::i(0));
  auto amount = m.addSwitch("amount", one, inc, zero,
                            model::SwitchCriteria::kNotZero, 0.0);
  auto next = m.addSum("next", {count, amount}, "++");
  auto sat = m.addSaturation("sat", next, 0, 10);
  m.bindDelayInput(count, sat);
  auto high = m.addCompareToConst("high", count, model::RelOp::kGt, 3.0);
  auto out = m.addSwitch("gate", one, high, zero,
                         model::SwitchCriteria::kNotZero, 0.0);
  m.addOutport("high_out", out);
  m.addOutport("count_out", count);
  return m;
}

TEST(Smoke, CounterCompiles) {
  auto m = makeCounter();
  EXPECT_TRUE(m.validate().empty());
  auto cm = compile::compile(m);
  EXPECT_EQ(cm.inputs.size(), 1u);
  EXPECT_EQ(cm.states.size(), 1u);
  EXPECT_EQ(cm.outputs.size(), 2u);
  // Decisions: amount switch, high-gate switch. (CompareToConst is a
  // condition, not a decision.)
  EXPECT_EQ(cm.decisions.size(), 2u);
  EXPECT_EQ(cm.branches.size(), 4u);
}

TEST(Smoke, CounterSimulates) {
  auto cm = compile::compile(makeCounter());
  sim::Simulator s(cm);
  coverage::CoverageTracker cov(cm);
  // Step with inc=true five times; count crosses 3 on the fifth output.
  for (int i = 0; i < 5; ++i) {
    (void)s.step({Scalar::b(true)}, &cov);
  }
  // After 5 increments the committed state is 5; output reflects the
  // pre-step count (4 > 3) on the fifth step.
  EXPECT_EQ(s.lastOutputs()[1].asInt(), 4);
  EXPECT_EQ(s.lastOutputs()[0].asInt(), 1);
  EXPECT_GT(cov.decisionCoverage(), 0.5);
}

TEST(Smoke, SnapshotRestoreRoundTrips) {
  auto cm = compile::compile(makeCounter());
  sim::Simulator s(cm);
  for (int i = 0; i < 3; ++i) (void)s.step({Scalar::b(true)}, nullptr);
  const auto snap = s.snapshot();
  (void)s.step({Scalar::b(true)}, nullptr);
  EXPECT_NE(s.snapshot(), snap);
  s.restore(snap);
  EXPECT_EQ(s.snapshot(), snap);
}

TEST(Smoke, StcgReachesFullCoverage) {
  auto cm = compile::compile(makeCounter());
  gen::GenOptions opt;
  opt.budgetMillis = 3000;
  opt.seed = 7;
  opt.solver.timeBudgetMillis = 20;
  gen::StcgGenerator g;
  const auto res = g.generate(cm, opt);
  EXPECT_EQ(res.coverage.decision, 1.0)
      << "covered " << res.coverage.coveredBranches << "/"
      << res.coverage.totalBranches;
  EXPECT_EQ(res.coverage.condition, 1.0);
  EXPECT_FALSE(res.tests.empty());
}

TEST(Smoke, SldvLikeCoversWithDeepUnrolling) {
  auto cm = compile::compile(makeCounter());
  gen::GenOptions opt;
  opt.budgetMillis = 5000;
  opt.seed = 7;
  opt.maxUnrollDepth = 5;
  opt.solver.timeBudgetMillis = 50;
  gen::SldvLikeGenerator g;
  const auto res = g.generate(cm, opt);
  // Depth-5 unrolling can reach count>3.
  EXPECT_EQ(res.coverage.decision, 1.0);
}

TEST(Smoke, SimCoTestLikeCoversEasily) {
  auto cm = compile::compile(makeCounter());
  gen::GenOptions opt;
  opt.budgetMillis = 2000;
  opt.seed = 7;
  gen::SimCoTestLikeGenerator g;
  const auto res = g.generate(cm, opt);
  // Random sequences of inc=true trivially reach the high branch.
  EXPECT_EQ(res.coverage.decision, 1.0);
}

}  // namespace
}  // namespace stcg
