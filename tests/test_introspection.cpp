// Tests for model introspection: Graphviz export and statistics.
#include <gtest/gtest.h>

#include "benchmodels/benchmodels.h"
#include "model/export.h"

namespace stcg::model {
namespace {

TEST(Dot, ContainsBlocksEdgesAndClusters) {
  const auto m = bench::buildCpuTaskSimplified();
  const auto dot = toDot(m);
  EXPECT_NE(dot.find("digraph \"CPUTaskSimplified\""), std::string::npos);
  EXPECT_NE(dot.find("subgraph cluster_r"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
  EXPECT_NE(dot.find("op_dispatch.case0"), std::string::npos);
  // Every block appears exactly once as a node definition.
  std::size_t nodes = 0;
  for (std::size_t pos = 0; (pos = dot.find(" [label=", pos)) != std::string::npos;
       ++pos) {
    ++nodes;
  }
  EXPECT_GE(nodes, m.blocks().size());
}

TEST(Dot, EscapesQuotes) {
  Model m("quoted\"name");
  (void)m.addInport("in", expr::Type::kInt, 0, 1);
  const auto dot = toDot(m);
  EXPECT_NE(dot.find("quoted\\\"name"), std::string::npos);
}

TEST(Stats, CountsMatchStructure) {
  const auto m = bench::buildTcp();
  const auto s = modelStats(m);
  EXPECT_EQ(s.blocks, static_cast<int>(m.blocks().size()));
  EXPECT_EQ(s.charts, 1);
  EXPECT_EQ(s.chartStates, 11);
  EXPECT_GT(s.chartTransitions, 20);
  EXPECT_GT(s.blocksByKind.at("Relational"), 0);
  EXPECT_NE(s.toString().find("blocks="), std::string::npos);
}

TEST(Stats, StatefulBlockAccounting) {
  Model m("t");
  auto x = m.addInport("x", expr::Type::kInt, 0, 1);
  (void)m.addUnitDelay("d1", x, expr::Scalar::i(0));
  (void)m.addDelayLine("d2", x, 3, expr::Scalar::i(0));
  const auto s = modelStats(m);
  EXPECT_EQ(s.statefulBlocks, 2);
  EXPECT_EQ(s.regions, 0);
}

}  // namespace
}  // namespace stcg::model
