// Unit tests for the coverage tracker: decision, condition, and MCDC
// accounting, including unique-cause pair detection.
#include <gtest/gtest.h>

#include "compile/compiler.h"
#include "coverage/coverage.h"
#include "model/model.h"

namespace stcg::coverage {
namespace {

using expr::Scalar;
using expr::Type;

// A model with one boolean 2-condition decision: switch on (a && b).
compile::CompiledModel twoCondModel() {
  model::Model m("cov");
  auto a = m.addInport("a", Type::kBool, 0, 1);
  auto b = m.addInport("b", Type::kBool, 0, 1);
  auto cond = m.addLogical("ab", model::LogicOp::kAnd, {a, b});
  auto one = m.addConstant("one", Scalar::i(1));
  auto zero = m.addConstant("zero", Scalar::i(0));
  m.addOutport("y", m.addSwitch("sw", one, cond, zero,
                                model::SwitchCriteria::kNotZero, 0.0));
  return compile::compile(m);
}

TEST(Coverage, StartsEmpty) {
  const auto cm = twoCondModel();
  CoverageTracker cov(cm);
  EXPECT_EQ(cov.coveredBranchCount(), 0);
  EXPECT_EQ(cov.decisionCoverage(), 0.0);
  EXPECT_EQ(cov.conditionCoverage(), 0.0);
  EXPECT_EQ(cov.mcdcCoverage(), 0.0);
  EXPECT_EQ(cov.uncoveredBranches().size(), cm.branches.size());
}

TEST(Coverage, RecordDecisionReportsNewBranchOnce) {
  const auto cm = twoCondModel();
  CoverageTracker cov(cm);
  const int d = cm.decisions[0].id;
  EXPECT_GE(cov.recordDecision(d, 0), 0);   // new
  EXPECT_EQ(cov.recordDecision(d, 0), -1);  // repeat
  EXPECT_GE(cov.recordDecision(d, 1), 0);   // other arm new
  EXPECT_EQ(cov.decisionCoverage(), 1.0);
}

TEST(Coverage, ConditionPolaritiesTrackedSeparately) {
  const auto cm = twoCondModel();
  CoverageTracker cov(cm);
  const int d = cm.decisions[0].id;
  EXPECT_TRUE(cov.recordConditions(d, {true, false}, false));
  EXPECT_TRUE(cov.conditionSeen(d, 0, true));
  EXPECT_FALSE(cov.conditionSeen(d, 0, false));
  EXPECT_TRUE(cov.conditionSeen(d, 1, false));
  const auto [seen, total] = cov.conditionCounts();
  EXPECT_EQ(seen, 2);
  EXPECT_EQ(total, 4);
  // Re-recording the same vector adds nothing new.
  EXPECT_FALSE(cov.recordConditions(d, {true, false}, false));
}

TEST(Coverage, McdcUniqueCausePairDetection) {
  const auto cm = twoCondModel();
  CoverageTracker cov(cm);
  const int d = cm.decisions[0].id;
  // (T,T)->true and (F,T)->false differ only in condition 0: pair for c0.
  (void)cov.recordConditions(d, {true, true}, true);
  (void)cov.recordConditions(d, {false, true}, false);
  EXPECT_TRUE(cov.mcdcDemonstrated(d, 0));
  EXPECT_FALSE(cov.mcdcDemonstrated(d, 1));
  const auto [ms, mt] = cov.mcdcCounts();
  EXPECT_EQ(ms, 1);
  EXPECT_EQ(mt, 2);
  // (T,F)->false completes condition 1 against (T,T)->true.
  (void)cov.recordConditions(d, {true, false}, false);
  EXPECT_TRUE(cov.mcdcDemonstrated(d, 1));
  EXPECT_EQ(cov.mcdcCoverage(), 1.0);
}

TEST(Coverage, McdcRequiresOutcomeChange) {
  const auto cm = twoCondModel();
  CoverageTracker cov(cm);
  const int d = cm.decisions[0].id;
  // Same outcome on both vectors: no pair even though only c0 flips.
  (void)cov.recordConditions(d, {true, false}, false);
  (void)cov.recordConditions(d, {false, false}, false);
  EXPECT_FALSE(cov.mcdcDemonstrated(d, 0));
}

TEST(Coverage, McdcRequiresSingleConditionDifference) {
  const auto cm = twoCondModel();
  CoverageTracker cov(cm);
  const int d = cm.decisions[0].id;
  // Both conditions flip: no unique cause.
  (void)cov.recordConditions(d, {true, true}, true);
  (void)cov.recordConditions(d, {false, false}, false);
  EXPECT_FALSE(cov.mcdcDemonstrated(d, 0));
  EXPECT_FALSE(cov.mcdcDemonstrated(d, 1));
}

TEST(Coverage, ExcludedGoalCoveredAnywayNeverInflatesTheRatio) {
  // Regression: an excluded branch that is covered anyway (an unsound
  // exclusion, or exclusions applied after coverage was recorded) used to
  // be counted in the exclusion-inclusive numerator over the
  // exclusion-exclusive denominator — a goal double-counted as both
  // pruned and covered, pushing reports past 100%.
  const auto cm = twoCondModel();
  CoverageTracker cov(cm);
  const int d = cm.decisions[0].id;
  Exclusions excl;
  for (const auto& br : cm.branches) {
    if (br.decision == d && br.arm == 0) excl.branches.push_back(br.id);
  }
  ASSERT_EQ(excl.branches.size(), 1u);
  cov.applyExclusions(excl);
  (void)cov.recordDecision(d, 0);  // covered despite the exclusion
  (void)cov.recordDecision(d, 1);

  const auto [covered, total] = cov.branchCounts();
  EXPECT_LE(covered, total);
  EXPECT_EQ(covered, 1);
  EXPECT_EQ(total, 1);
  EXPECT_EQ(cov.decisionCoverage(), 1.0);
  // The raw counters still expose the unsound-proof signal, distinct
  // from the reporting pair.
  EXPECT_EQ(cov.coveredBranchCount(), 2);
  // And the human-readable report agrees with branchCounts().
  EXPECT_NE(cov.report().find("(1/1 branches)"), std::string::npos)
      << cov.report();
}

TEST(Coverage, ReportMentionsUncoveredBranches) {
  const auto cm = twoCondModel();
  CoverageTracker cov(cm);
  const auto report = cov.report();
  EXPECT_NE(report.find("Uncovered branches"), std::string::npos);
  EXPECT_NE(report.find("cov/sw"), std::string::npos);
}

}  // namespace
}  // namespace stcg::coverage
