// Unit tests for the state tree (paper Definitions 3/4) and snapshot
// hashing.
#include <gtest/gtest.h>

#include "stcg/state_tree.h"

namespace stcg::gen {
namespace {

using expr::Scalar;
using expr::Value;

sim::StateSnapshot snap(std::initializer_list<std::int64_t> vals) {
  sim::StateSnapshot s;
  for (const auto v : vals) s.emplace_back(Scalar::i(v));
  return s;
}

sim::InputVector in(std::int64_t v) { return {Scalar::i(v)}; }

TEST(StateTree, RootOnlyAtConstruction) {
  StateTree t(snap({0, 0}));
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.node(0).parent, -1);
  EXPECT_TRUE(t.pathInputs(0).empty());
  EXPECT_EQ(t.depth(0), 0);
}

TEST(StateTree, AddChildLinksParentAndChildren) {
  StateTree t(snap({0}));
  const int a = t.addChild(0, in(1), snap({1}));
  const int b = t.addChild(a, in(2), snap({2}));
  EXPECT_EQ(t.node(a).parent, 0);
  EXPECT_EQ(t.node(b).parent, a);
  ASSERT_EQ(t.node(0).children.size(), 1u);
  EXPECT_EQ(t.node(0).children[0], a);
  EXPECT_EQ(t.depth(b), 2);
}

TEST(StateTree, PathInputsIsRootToNodeOrder) {
  StateTree t(snap({0}));
  const int a = t.addChild(0, in(10), snap({1}));
  const int b = t.addChild(a, in(20), snap({2}));
  const int c = t.addChild(b, in(30), snap({3}));
  const auto path = t.pathInputs(c);
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[0][0], Scalar::i(10));
  EXPECT_EQ(path[1][0], Scalar::i(20));
  EXPECT_EQ(path[2][0], Scalar::i(30));
}

TEST(StateTree, FindByStateMatchesExactValues) {
  StateTree t(snap({0, 5}));
  const int a = t.addChild(0, in(1), snap({1, 5}));
  EXPECT_EQ(t.findByState(snap({1, 5})), a);
  EXPECT_EQ(t.findByState(snap({0, 5})), 0);
  EXPECT_EQ(t.findByState(snap({2, 5})), -1);
}

TEST(StateTree, AttemptedGoalsPerNode) {
  StateTree t(snap({0}));
  const int a = t.addChild(0, in(1), snap({1}));
  EXPECT_FALSE(t.isAttempted(0, 7));
  t.markAttempted(0, 7);
  EXPECT_TRUE(t.isAttempted(0, 7));
  EXPECT_FALSE(t.isAttempted(a, 7));  // per node, not global
}

TEST(StateTree, HashDistinguishesValueAndOrder) {
  EXPECT_EQ(hashSnapshot(snap({1, 2})), hashSnapshot(snap({1, 2})));
  EXPECT_NE(hashSnapshot(snap({1, 2})), hashSnapshot(snap({2, 1})));
  EXPECT_NE(hashSnapshot(snap({1, 2})), hashSnapshot(snap({1, 3})));
  // Types matter: int 1 vs real 1.0 are different states.
  sim::StateSnapshot intState{Value(Scalar::i(1))};
  sim::StateSnapshot realState{Value(Scalar::r(1.0))};
  EXPECT_NE(hashSnapshot(intState), hashSnapshot(realState));
}

TEST(StateTree, ArrayStatesHashElementwise) {
  sim::StateSnapshot a{Value(expr::Type::kInt,
                             {Scalar::i(1), Scalar::i(2), Scalar::i(3)})};
  sim::StateSnapshot b{Value(expr::Type::kInt,
                             {Scalar::i(1), Scalar::i(2), Scalar::i(4)})};
  EXPECT_NE(hashSnapshot(a), hashSnapshot(b));
}

TEST(StateTree, RandomNodeStaysInRange) {
  StateTree t(snap({0}));
  for (int i = 0; i < 5; ++i) {
    (void)t.addChild(0, in(i), snap({i + 1}));
  }
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const int n = t.randomNode(rng);
    EXPECT_GE(n, 0);
    EXPECT_LT(n, static_cast<int>(t.size()));
  }
}

}  // namespace
}  // namespace stcg::gen
