// Tape-engine tests: the bit-identity contract between the compiled
// instruction tape and the tree walkers it replaces.
//
//   - differential fuzz over random expression DAGs (every Op kind):
//     concrete tape vs tree Evaluator, interval tape vs IntervalEvaluator,
//     incremental dirty-cone updates vs full re-evaluation,
//   - DistanceTape vs branchDistance (bitwise costs, including the
//     incremental update path the hill climber uses),
//   - tape-vs-tree Simulator runs across all eight bench models
//     (outputs, snapshots, coverage events),
//   - batched interval verdicts vs per-constraint tree walks under the
//     computed state invariant,
//   - LocalSearchSolver and StcgGenerator producing identical results on
//     either engine,
//   - the satellite regressions: pinned-root dedup in both evaluators and
//     Env::reserve semantics.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "analysis/interval_eval.h"
#include "analysis/interval_tape.h"
#include "analysis/reachability.h"
#include "benchmodels/benchmodels.h"
#include "compile/compiler.h"
#include "coverage/coverage.h"
#include "expr/builder.h"
#include "expr/eval.h"
#include "expr/tape.h"
#include "expr/tape_passes.h"
#include "expr/tape_verify.h"
#include "interval/interval.h"
#include "model/model.h"
#include "sim/simulator.h"
#include "solver/distance_tape.h"
#include "solver/local_search.h"
#include "solver/solver.h"
#include "stcg/stcg_generator.h"
#include "util/rng.h"

#include "fuzz_dag.h"

namespace stcg {
namespace {

using fuzz::clampInt;
using fuzz::clampReal;
using fuzz::FuzzDag;
using fuzz::kIntArrId;
using fuzz::kRealArrId;
using fuzz::makeFuzzDag;
using fuzz::randomEnv;
using fuzz::randomScalarFor;
using fuzz::sameBits;
using fuzz::sameScalar;

using expr::Env;
using expr::ExprPtr;
using expr::Scalar;
using expr::SlotRef;
using expr::Type;
using expr::VarInfo;
using interval::Interval;

// Bitwise comparison helpers live in fuzz_dag.h (shared with the batch
// executor's differential tests); the interval flavour is only used here.
bool sameInterval(const Interval& a, const Interval& b) {
  if (a.isEmpty() || b.isEmpty()) return a.isEmpty() == b.isEmpty();
  return sameBits(a.lo(), b.lo()) && sameBits(a.hi(), b.hi());
}

// ----- Tape basics ---------------------------------------------------------

TEST(TapeBasics, ConstantRootsNeedNoInstructions) {
  expr::TapeBuilder b;
  const auto c = expr::cReal(2.5);
  const SlotRef s1 = b.addRoot(c);
  const SlotRef s2 = b.addRoot(expr::cReal(2.5));  // distinct node, same bits
  const auto arr =
      expr::cArray(Type::kInt, {Scalar::i(1), Scalar::i(2)});
  const SlotRef sa = b.addRoot(arr);
  expr::TapeExecutor ex(b.finish());
  EXPECT_TRUE(ex.tape().code().empty());
  EXPECT_EQ(s1.slot, s2.slot) << "equal constants must share one slot";
  ex.run();  // no variables, no instructions: a no-op
  EXPECT_TRUE(sameScalar(ex.scalar(s1), Scalar::r(2.5)));
  ASSERT_TRUE(sa.isArray);
  ASSERT_EQ(ex.array(sa).size(), 2u);
  EXPECT_TRUE(sameScalar(ex.array(sa)[1], Scalar::i(2)));
}

TEST(TapeBasics, CseSharesSubtermsWithinAndAcrossRoots) {
  const VarInfo xi{0, "x", Type::kInt, -10, 10};
  const VarInfo yi{1, "y", Type::kInt, -10, 10};
  const auto x = expr::mkVar(xi);
  const auto y = expr::mkVar(yi);
  const auto common = expr::addE(x, y);
  expr::TapeBuilder b;
  (void)b.addRoot(expr::mulE(common, x));
  (void)b.addRoot(expr::subE(common, y));
  // A structurally identical add built from fresh nodes: value numbering
  // must fold it onto the existing instruction, not emit a new one.
  const SlotRef again = b.addRoot(expr::addE(expr::mkVar(xi), expr::mkVar(yi)));
  const SlotRef first = b.slotOf(common.get());
  EXPECT_EQ(again.slot, first.slot);
  expr::TapeExecutor ex(b.finish());
  // Exactly {add, mul, sub}: the shared add is emitted once.
  EXPECT_EQ(ex.tape().code().size(), 3u);
  ex.setVar(0, Scalar::i(4));
  ex.setVar(1, Scalar::i(7));
  ex.run();
  EXPECT_TRUE(sameScalar(ex.scalar(first), Scalar::i(11)));
}

TEST(TapeBasics, SlotOfUnknownNodeThrows) {
  expr::TapeBuilder b;
  (void)b.addRoot(expr::cInt(1));
  const auto stranger = expr::cInt(99);
  EXPECT_THROW((void)b.slotOf(stranger.get()), expr::EvalError);
}

TEST(TapeBasics, RunNamesTheFirstUnboundVariable) {
  const auto x = expr::mkVar({0, "x", Type::kInt, -10, 10});
  const auto y = expr::mkVar({1, "lonely_y", Type::kInt, -10, 10});
  expr::TapeBuilder b;
  const SlotRef root = b.addRoot(expr::addE(x, y));
  expr::TapeExecutor ex(b.finish());
  ex.setVar(0, Scalar::i(1));
  try {
    ex.run();
    FAIL() << "expected EvalError for the unbound variable";
  } catch (const expr::EvalError& e) {
    EXPECT_NE(std::string(e.what()).find("lonely_y"), std::string::npos)
        << e.what();
  }
  ex.setVar(1, Scalar::i(2));
  ex.run();
  EXPECT_TRUE(sameScalar(ex.scalar(root), Scalar::i(3)));
}

TEST(TapeBasics, ConesCoverExactlyTheDependentInstructions) {
  const auto x = expr::mkVar({0, "x", Type::kInt, -10, 10});
  const auto y = expr::mkVar({1, "y", Type::kInt, -10, 10});
  const auto z = expr::mkVar({2, "z", Type::kInt, -10, 10});
  expr::TapeBuilder b;
  const SlotRef sum = b.addRoot(expr::addE(x, y));      // depends on x, y
  const SlotRef dbl = b.addRoot(expr::mulE(z, z));      // depends on z only
  expr::TapeExecutor ex(b.finish());
  const auto* coneX = ex.tape().coneOf(0);
  ASSERT_NE(coneX, nullptr);
  EXPECT_EQ(coneX->size(), 1u);
  const auto* coneZ = ex.tape().coneOf(2);
  ASSERT_NE(coneZ, nullptr);
  EXPECT_EQ(coneZ->size(), 1u);
  EXPECT_NE((*coneX)[0], (*coneZ)[0]);
  EXPECT_EQ(ex.tape().coneOf(77), nullptr) << "unknown variable: no cone";
  EXPECT_GE(ex.tape().maxConeSize(), 1u);

  ex.setVar(0, Scalar::i(1));
  ex.setVar(1, Scalar::i(2));
  ex.setVar(2, Scalar::i(5));
  ex.run();
  EXPECT_TRUE(sameScalar(ex.scalar(dbl), Scalar::i(25)));
  ex.setVar(2, Scalar::i(6));
  ex.runCone(2);
  EXPECT_TRUE(sameScalar(ex.scalar(dbl), Scalar::i(36)));
  EXPECT_TRUE(sameScalar(ex.scalar(sum), Scalar::i(3)))
      << "z's cone must not touch the x+y slot";
}

// ----- Differential fuzz: concrete tape vs tree Evaluator ------------------

TEST(TapeFuzz, ScalarTapeMatchesTreeEvaluatorBitwise) {
  Rng rng(20260805);
  for (int trial = 0; trial < 25; ++trial) {
    FuzzDag d = makeFuzzDag(rng, /*withArrays=*/true);
    expr::TapeBuilder b;
    std::vector<ExprPtr> roots;
    std::vector<SlotRef> slots;
    const auto addRootFrom = [&](const std::vector<ExprPtr>& pool) {
      const auto& e = pool[rng.index(pool.size())];
      roots.push_back(e);
      slots.push_back(b.addRoot(e));
    };
    for (int i = 0; i < 3; ++i) addRootFrom(d.bools);
    for (int i = 0; i < 2; ++i) {
      addRootFrom(d.ints);
      addRootFrom(d.reals);
    }
    addRootFrom(d.realArrays);
    addRootFrom(d.intArrays);

    expr::TapeExecutor ex(b.finish());
    Env env = randomEnv(rng, d);
    ex.bindEnv(env);
    ex.run();

    const auto checkAll = [&](const Env& cur, const char* what) {
      expr::Evaluator ev(cur);
      for (std::size_t i = 0; i < roots.size(); ++i) {
        if (roots[i]->isArray()) {
          const auto tree = ev.evalArray(roots[i]);
          const auto& tape = ex.array(slots[i]);
          ASSERT_EQ(tree.size(), tape.size())
              << what << " trial " << trial << " root " << i;
          for (std::size_t j = 0; j < tree.size(); ++j) {
            EXPECT_TRUE(sameScalar(tree[j], tape[j]))
                << what << " trial " << trial << " root " << i << " [" << j
                << "]";
          }
        } else {
          EXPECT_TRUE(sameScalar(ev.evalScalar(roots[i]), ex.scalar(slots[i])))
              << what << " trial " << trial << " root " << i;
        }
      }
    };
    checkAll(env, "full");

    // Incremental: mutate one variable at a time, replay only its cone on
    // the live executor, and require *every* root (not just the obviously
    // affected ones) to match a fresh tree evaluation — this catches any
    // instruction missing from a cone.
    for (int m = 0; m < 6; ++m) {
      const auto& v = d.vars[rng.index(d.vars.size())];
      const Scalar nv = randomScalarFor(rng, v);
      env.set(v.id, nv);
      ex.setVar(v.id, nv);
      ex.runCone(v.id);
      checkAll(env, "cone");
    }
    // One array-variable cone as well.
    std::vector<Scalar> ar;
    for (int i = 0; i < 4; ++i) {
      ar.push_back(Scalar::r(rng.uniformReal(-50.0, 50.0)));
    }
    env.setArray(kRealArrId, ar);
    ex.setArrayVar(kRealArrId, ar);
    ex.runCone(kRealArrId);
    checkAll(env, "array-cone");
  }
}

// ----- Differential fuzz: interval tape vs IntervalEvaluator ---------------

TEST(TapeFuzz, IntervalTapeMatchesTreeIntervalEvaluator) {
  Rng rng(77001);
  for (int trial = 0; trial < 20; ++trial) {
    FuzzDag d = makeFuzzDag(rng, /*withArrays=*/true);
    expr::TapeBuilder b;
    std::vector<ExprPtr> roots;
    std::vector<SlotRef> slots;
    const auto addRootFrom = [&](const std::vector<ExprPtr>& pool) {
      const auto& e = pool[rng.index(pool.size())];
      roots.push_back(e);
      slots.push_back(b.addRoot(e));
    };
    for (int i = 0; i < 3; ++i) addRootFrom(d.bools);
    for (int i = 0; i < 2; ++i) {
      addRootFrom(d.ints);
      addRootFrom(d.reals);
    }
    addRootFrom(d.realArrays);
    addRootFrom(d.intArrays);

    // Bind a random subset; unbound variables must fall back to their
    // declared domains identically in both engines.
    analysis::IntervalEnv env;
    for (const auto& v : d.vars) {
      if (!rng.chance(0.6)) continue;
      if (v.type == Type::kReal) {
        double a = rng.uniformReal(v.lo, v.hi);
        double c = rng.uniformReal(v.lo, v.hi);
        if (a > c) std::swap(a, c);
        env.set(v.id, Interval(a, c));
      } else {
        std::int64_t a = rng.uniformInt(static_cast<std::int64_t>(v.lo),
                                        static_cast<std::int64_t>(v.hi));
        std::int64_t c = rng.uniformInt(static_cast<std::int64_t>(v.lo),
                                        static_cast<std::int64_t>(v.hi));
        if (a > c) std::swap(a, c);
        env.set(v.id, Interval(static_cast<double>(a),
                               static_cast<double>(c)));
      }
    }
    if (rng.chance(0.5)) {
      std::vector<Interval> elems;
      for (int i = 0; i < 4; ++i) {
        const double m = rng.uniformReal(-50.0, 50.0);
        elems.push_back(Interval(m, m + rng.uniformReal(0.0, 10.0)));
      }
      env.setArray(kRealArrId, std::move(elems));
    }
    if (rng.chance(0.5)) {
      std::vector<Interval> elems;
      for (int i = 0; i < 3; ++i) {
        const auto m = static_cast<double>(rng.uniformInt(-20, 20));
        elems.push_back(Interval(m, m + 3.0));
      }
      env.setArray(kIntArrId, std::move(elems));
    }

    analysis::IntervalTapeExecutor ex(b.finish());
    ex.bind(env);
    ex.run();
    analysis::IntervalEvaluator ev(env);
    for (std::size_t i = 0; i < roots.size(); ++i) {
      if (roots[i]->isArray()) {
        const auto tree = ev.evalArray(roots[i]);
        const auto& tape = ex.array(slots[i]);
        ASSERT_EQ(tree.size(), tape.size()) << "trial " << trial;
        for (std::size_t j = 0; j < tree.size(); ++j) {
          EXPECT_TRUE(sameInterval(tree[j], tape[j]))
              << "trial " << trial << " root " << i << " [" << j << "]: ["
              << tree[j].lo() << "," << tree[j].hi() << "] vs ["
              << tape[j].lo() << "," << tape[j].hi() << "]";
        }
      } else {
        const Interval tree = ev.evalScalar(roots[i]);
        const Interval& tape = ex.scalar(slots[i]);
        EXPECT_TRUE(sameInterval(tree, tape))
            << "trial " << trial << " root " << i << ": [" << tree.lo() << ","
            << tree.hi() << "] vs [" << tape.lo() << "," << tape.hi() << "]";
      }
    }
  }
}

// ----- Differential fuzz: DistanceTape vs branchDistance -------------------

TEST(TapeFuzz, DistanceTapeMatchesBranchDistanceBitwise) {
  Rng rng(5150);
  for (int trial = 0; trial < 20; ++trial) {
    // Scalar-only DAG: the hill climber's goals range over input scalars.
    FuzzDag d = makeFuzzDag(rng, /*withArrays=*/false);
    ExprPtr goal = d.bools[rng.index(d.bools.size())];
    goal = expr::andE(std::move(goal), d.bools[rng.index(d.bools.size())]);
    goal = expr::orE(std::move(goal), d.bools[rng.index(d.bools.size())]);

    solver::DistanceTape dt(goal, d.vars);
    EXPECT_GT(dt.overlayInstrCount() + 1, 0u);  // touch the diagnostics

    const auto toEnv = [&](const std::vector<double>& p) {
      Env env;
      for (std::size_t i = 0; i < d.vars.size(); ++i) {
        env.set(d.vars[i].id, solver::scalarForVar(d.vars[i], p[i]));
      }
      return env;
    };
    const auto randomCoord = [&](const VarInfo& v) -> double {
      if (v.type == Type::kReal) return rng.uniformReal(v.lo, v.hi);
      return static_cast<double>(
          rng.uniformInt(static_cast<std::int64_t>(v.lo),
                         static_cast<std::int64_t>(v.hi)));
    };

    std::vector<double> point(d.vars.size());
    for (std::size_t i = 0; i < point.size(); ++i) {
      point[i] = randomCoord(d.vars[i]);
    }
    EXPECT_EQ(dt.rebind(point),
              solver::branchDistance(goal, toEnv(point), true))
        << "trial " << trial << " initial rebind";

    // The climber's pattern: single-coordinate mutations scored through
    // the dirty cone. Every cost must equal the full tree walk exactly.
    for (int m = 0; m < 25; ++m) {
      const std::size_t i = rng.index(d.vars.size());
      point[i] = randomCoord(d.vars[i]);
      EXPECT_EQ(dt.update(i, point[i]),
                solver::branchDistance(goal, toEnv(point), true))
          << "trial " << trial << " move " << m;
    }
    // And a mid-stream full rebind (restart path).
    EXPECT_EQ(dt.rebind(point),
              solver::branchDistance(goal, toEnv(point), true))
        << "trial " << trial << " restart rebind";
  }
}

// ----- Differential fuzz: pass-pipeline output vs raw tape -----------------

TEST(TapePassFuzz, OptimizedTapeMatchesRawConcreteAndConeExecution) {
  Rng rng(20260807);
  for (int trial = 0; trial < 25; ++trial) {
    FuzzDag d = makeFuzzDag(rng, /*withArrays=*/true);
    std::vector<ExprPtr> roots;
    const auto addRootFrom = [&](const std::vector<ExprPtr>& pool) {
      roots.push_back(pool[rng.index(pool.size())]);
    };
    for (int i = 0; i < 3; ++i) addRootFrom(d.bools);
    for (int i = 0; i < 2; ++i) {
      addRootFrom(d.ints);
      addRootFrom(d.reals);
    }
    addRootFrom(d.realArrays);
    addRootFrom(d.intArrays);

    const fuzz::TapePair p = fuzz::buildTapePair(roots);
    ASSERT_FALSE(expr::verifyTape(*p.raw).hasErrors()) << "trial " << trial;
    ASSERT_FALSE(expr::verifyTape(*p.optimized).hasErrors())
        << "trial " << trial
        << "\n" << expr::verifyTape(*p.optimized).render();

    expr::TapeExecutor raw(p.raw), opt(p.optimized);
    Env env = randomEnv(rng, d);
    raw.bindEnv(env);
    raw.run();
    opt.bindEnv(env);
    opt.run();

    const auto checkAll = [&](const char* what) {
      for (std::size_t i = 0; i < roots.size(); ++i) {
        if (roots[i]->isArray()) {
          const auto& a = raw.array(p.rawSlots[i]);
          const auto& b = opt.array(p.optSlots[i]);
          ASSERT_EQ(a.size(), b.size())
              << what << " trial " << trial << " root " << i;
          for (std::size_t j = 0; j < a.size(); ++j) {
            EXPECT_TRUE(sameScalar(a[j], b[j]))
                << what << " trial " << trial << " root " << i << " [" << j
                << "]";
          }
        } else {
          EXPECT_TRUE(
              sameScalar(raw.scalar(p.rawSlots[i]), opt.scalar(p.optSlots[i])))
              << what << " trial " << trial << " root " << i;
        }
      }
    };
    checkAll("full");

    // Incremental cone replay must stay exact on the slot-shared tape —
    // the property the allocator's cone-coherence restriction protects.
    for (int m = 0; m < 6; ++m) {
      const auto& v = d.vars[rng.index(d.vars.size())];
      const Scalar nv = randomScalarFor(rng, v);
      raw.setVar(v.id, nv);
      raw.runCone(v.id);
      opt.setVar(v.id, nv);
      opt.runCone(v.id);
      checkAll("cone");
    }
    std::vector<Scalar> ar;
    for (int i = 0; i < 4; ++i) {
      ar.push_back(Scalar::r(rng.uniformReal(-50.0, 50.0)));
    }
    raw.setArrayVar(kRealArrId, ar);
    raw.runCone(kRealArrId);
    opt.setArrayVar(kRealArrId, ar);
    opt.runCone(kRealArrId);
    checkAll("array-cone");
  }
}

TEST(TapePassFuzz, IntervalSafeOptimizationMatchesRawIntervalExecution) {
  Rng rng(88002);
  for (int trial = 0; trial < 20; ++trial) {
    FuzzDag d = makeFuzzDag(rng, /*withArrays=*/true);
    std::vector<ExprPtr> roots;
    const auto addRootFrom = [&](const std::vector<ExprPtr>& pool) {
      roots.push_back(pool[rng.index(pool.size())]);
    };
    for (int i = 0; i < 3; ++i) addRootFrom(d.bools);
    for (int i = 0; i < 2; ++i) {
      addRootFrom(d.ints);
      addRootFrom(d.reals);
    }
    addRootFrom(d.realArrays);
    addRootFrom(d.intArrays);

    const fuzz::TapePair p =
        fuzz::buildTapePair(roots, analysis::intervalSafePassOptions());
    ASSERT_FALSE(expr::verifyTape(*p.optimized).hasErrors())
        << "trial " << trial;

    // Random partial binding, as in the interval-vs-tree fuzz above.
    analysis::IntervalEnv env;
    for (const auto& v : d.vars) {
      if (!rng.chance(0.6)) continue;
      double a = rng.uniformReal(v.lo, v.hi);
      double c = rng.uniformReal(v.lo, v.hi);
      if (a > c) std::swap(a, c);
      Interval iv(a, c);
      if (v.type != Type::kReal) iv = iv.integralHull();
      env.set(v.id, iv);
    }
    if (rng.chance(0.5)) {
      std::vector<Interval> elems;
      for (int i = 0; i < 4; ++i) {
        const double m = rng.uniformReal(-50.0, 50.0);
        elems.push_back(Interval(m, m + rng.uniformReal(0.0, 10.0)));
      }
      env.setArray(kRealArrId, std::move(elems));
    }

    analysis::IntervalTapeExecutor raw(p.raw), opt(p.optimized);
    raw.bind(env);
    raw.run();
    opt.bind(env);
    opt.run();
    for (std::size_t i = 0; i < roots.size(); ++i) {
      if (roots[i]->isArray()) {
        const auto& a = raw.array(p.rawSlots[i]);
        const auto& b = opt.array(p.optSlots[i]);
        ASSERT_EQ(a.size(), b.size()) << "trial " << trial << " root " << i;
        for (std::size_t j = 0; j < a.size(); ++j) {
          EXPECT_TRUE(sameInterval(a[j], b[j]))
              << "trial " << trial << " root " << i << " [" << j << "]: ["
              << a[j].lo() << "," << a[j].hi() << "] vs [" << b[j].lo() << ","
              << b[j].hi() << "]";
        }
      } else {
        const Interval& a = raw.scalar(p.rawSlots[i]);
        const Interval& b = opt.scalar(p.optSlots[i]);
        EXPECT_TRUE(sameInterval(a, b))
            << "trial " << trial << " root " << i << ": [" << a.lo() << ","
            << a.hi() << "] vs [" << b.lo() << "," << b.hi() << "]";
      }
    }
  }
}

TEST(TapePassFuzz, DistanceOverlayTapsMatchRawAfterOptimization) {
  Rng rng(314159);
  for (int trial = 0; trial < 15; ++trial) {
    FuzzDag d = makeFuzzDag(rng, /*withArrays=*/false);
    ExprPtr goal = d.bools[rng.index(d.bools.size())];
    goal = expr::andE(std::move(goal), d.bools[rng.index(d.bools.size())]);

    // The producer's build: value tape + overlay, interior value taps
    // (va/vb) pinned live through the optimizer.
    expr::TapeBuilder b;
    const solver::DistanceProgram prog = solver::buildDistanceProgram(goal, b);
    const std::shared_ptr<const expr::Tape> raw = b.finish();
    std::vector<SlotRef> taps;
    for (const auto& in : prog.code) {
      if (in.va >= 0) taps.push_back({in.va, false});
      if (in.vb >= 0) taps.push_back({in.vb, false});
    }
    const expr::OptimizedTape o = expr::optimizeTape(raw, taps);
    ASSERT_FALSE(expr::verifyTape(*o.tape).hasErrors()) << "trial " << trial;

    // Every overlay tap must read the same bits from either tape — the
    // overlay is a pure function of the taps, so the distances agree too.
    expr::TapeExecutor rawEx(raw), optEx(o.tape);
    for (int probe = 0; probe < 5; ++probe) {
      const Env env = randomEnv(rng, d);
      rawEx.bindEnv(env);
      rawEx.run();
      optEx.bindEnv(env);
      optEx.run();
      for (std::size_t i = 0; i < taps.size(); ++i) {
        const SlotRef mapped = o.remap(taps[i]);
        ASSERT_TRUE(mapped.valid()) << "trial " << trial << " tap " << i;
        EXPECT_TRUE(sameScalar(rawEx.scalar(taps[i]), optEx.scalar(mapped)))
            << "trial " << trial << " probe " << probe << " tap " << i;
      }
    }
  }
}

// ----- Simulator: tape engine vs tree engine on the bench suite ------------

class TapeSimSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(TapeSimSweep, TapeAndTreeEnginesAgreeStepForStep) {
  const auto cm = compile::compile(bench::buildBenchModel(GetParam()));
  sim::Simulator tape(cm);  // kTape is the default
  sim::Simulator tree(cm, sim::EvalEngine::kTree);
  EXPECT_EQ(tape.engine(), sim::EvalEngine::kTape);
  EXPECT_EQ(tree.engine(), sim::EvalEngine::kTree);
  coverage::CoverageTracker covTape(cm);
  coverage::CoverageTracker covTree(cm);

  Rng rng(2026);
  sim::StateSnapshot mark = tape.snapshot();
  for (int stepNo = 0; stepNo < 250; ++stepNo) {
    if (stepNo == 100) mark = tape.snapshot();
    if (stepNo == 200) {  // exercise the restore path under both engines
      tape.restore(mark);
      tree.restore(mark);
    }
    const auto in = sim::randomInput(cm, rng);
    const auto ra = tape.step(in, &covTape);
    const auto rb = tree.step(in, &covTree);
    EXPECT_EQ(ra.newlyCovered, rb.newlyCovered) << "step " << stepNo;
    EXPECT_EQ(ra.newConditionObservation, rb.newConditionObservation)
        << "step " << stepNo;
    const auto& outA = tape.lastOutputs();
    const auto& outB = tree.lastOutputs();
    ASSERT_EQ(outA.size(), outB.size());
    for (std::size_t i = 0; i < outA.size(); ++i) {
      EXPECT_TRUE(sameScalar(outA[i], outB[i]))
          << "step " << stepNo << " output " << i;
    }
    EXPECT_TRUE(tape.state() == tree.state()) << "step " << stepNo;
    EXPECT_EQ(sim::snapshotHash(tape.state()), sim::snapshotHash(tree.state()))
        << "step " << stepNo;
  }
  EXPECT_EQ(covTape.coveredBranchCount(), covTree.coveredBranchCount());
  EXPECT_EQ(covTape.decisionCoverage(), covTree.decisionCoverage());
  EXPECT_EQ(covTape.conditionCoverage(), covTree.conditionCoverage());
  EXPECT_EQ(covTape.mcdcCoverage(), covTree.mcdcCoverage());
}

INSTANTIATE_TEST_SUITE_P(AllModels, TapeSimSweep,
                         ::testing::Values("CPUTask", "AFC", "TWC",
                                           "NICProtocol", "UTPC", "LANSwitch",
                                           "LEDLC", "TCP"));

// ----- Batched interval verdicts under the real state invariants -----------

TEST(IntervalTape, BatchVerdictsMatchTreeWalkUnderModelInvariants) {
  for (const auto& info : bench::allBenchModels()) {
    const auto cm = compile::compile(info.build());
    const auto inv = analysis::computeStateInvariant(cm);
    std::vector<ExprPtr> roots;
    for (const auto& br : cm.branches) roots.push_back(br.pathConstraint);
    for (const auto& obj : cm.objectives) {
      roots.push_back(expr::andE(obj.activation, obj.cond));
    }
    if (roots.empty()) continue;
    const auto batch = analysis::intervalVerdicts(roots, inv.env);
    ASSERT_EQ(batch.size(), roots.size()) << info.name;
    analysis::IntervalEvaluator ev(inv.env);
    for (std::size_t i = 0; i < roots.size(); ++i) {
      const Interval tree = ev.evalScalar(roots[i]);
      EXPECT_TRUE(sameInterval(tree, batch[i]))
          << info.name << " constraint " << i << ": [" << tree.lo() << ","
          << tree.hi() << "] vs [" << batch[i].lo() << "," << batch[i].hi()
          << "]";
    }
  }
}

// ----- LocalSearchSolver: identical search under either engine -------------

TEST(LocalSearchEngines, TapeAndTreeProduceIdenticalResults) {
  const VarInfo x{201, "x", Type::kReal, -10, 10};
  const VarInfo y{202, "y", Type::kReal, -10, 10};
  const auto dx = expr::subE(expr::mkVar(x), expr::cReal(3.0));
  const auto dy = expr::addE(expr::mkVar(y), expr::cReal(2.0));
  const auto goal = expr::leE(
      expr::addE(expr::mulE(dx, dx), expr::mulE(dy, dy)), expr::cReal(0.5));

  solver::SolveOptions so;
  so.seed = 5;
  so.timeBudgetMillis = 5000;  // generous: both runs terminate on SAT
  solver::LocalSearchSolver tapeSolver(so);  // kTape is the default
  solver::LocalSearchSolver treeSolver(so, solver::LocalSearchSolver::Engine::kTree);
  const auto ra = tapeSolver.solve(goal, {x, y});
  const auto rb = treeSolver.solve(goal, {x, y});
  ASSERT_TRUE(ra.sat());
  ASSERT_TRUE(rb.sat());
  EXPECT_EQ(ra.stats.samplesTried, rb.stats.samplesTried)
      << "bit-identical costs must drive the identical search path";
  EXPECT_TRUE(sameBits(ra.model.get(x.id).toReal(), rb.model.get(x.id).toReal()));
  EXPECT_TRUE(sameBits(ra.model.get(y.id).toReal(), rb.model.get(y.id).toReal()));
}

// ----- End-to-end: StcgGenerator result pinned across sim engines ----------

// The latch model from the parallel-determinism tests: deep state, full
// branch coverage reachable, so runs terminate on coverage (not the wall
// clock) and the whole GenResult is comparable.
model::Model makeLatchModel() {
  model::Model m("Latch");
  auto code = m.addInport("code", Type::kInt, 0, 100000);
  auto arm = m.addInport("arm", Type::kBool, 0, 1);
  auto latch = m.addUnitDelayHole("latched", Scalar::i(-1));
  auto latchNext = m.addSwitch("latch_next", code, arm, latch,
                               model::SwitchCriteria::kNotZero, 0.0);
  m.bindDelayInput(latch, latchNext);
  auto match = m.addRelational("match", model::RelOp::kEq, code, latch);
  auto valid = m.addCompareToConst("valid", latch, model::RelOp::kGe, 0.0);
  auto unlock = m.addLogical("unlock", model::LogicOp::kAnd, {match, valid});
  auto one = m.addConstant("one", Scalar::i(1));
  auto zero = m.addConstant("zero", Scalar::i(0));
  m.addOutport("y", m.addSwitch("out", one, unlock, zero,
                                model::SwitchCriteria::kNotZero, 0.0));
  return m;
}

void expectIdenticalGen(const gen::GenResult& a, const gen::GenResult& b,
                        const std::string& what) {
  ASSERT_EQ(a.tests.size(), b.tests.size()) << what;
  for (std::size_t i = 0; i < a.tests.size(); ++i) {
    EXPECT_EQ(a.tests[i].steps, b.tests[i].steps) << what << " test " << i;
    EXPECT_EQ(a.tests[i].origin, b.tests[i].origin) << what << " test " << i;
    EXPECT_EQ(a.tests[i].goalLabel, b.tests[i].goalLabel)
        << what << " test " << i;
  }
  EXPECT_EQ(a.coverage.decision, b.coverage.decision) << what;
  EXPECT_EQ(a.coverage.condition, b.coverage.condition) << what;
  EXPECT_EQ(a.coverage.mcdc, b.coverage.mcdc) << what;
  EXPECT_EQ(a.coverage.coveredBranches, b.coverage.coveredBranches) << what;
  EXPECT_EQ(a.stats.solveCalls, b.stats.solveCalls) << what;
  EXPECT_EQ(a.stats.solveSat, b.stats.solveSat) << what;
  EXPECT_EQ(a.stats.stepsExecuted, b.stats.stepsExecuted) << what;
  EXPECT_EQ(a.stats.treeNodes, b.stats.treeNodes) << what;
  EXPECT_EQ(a.stats.randomSequences, b.stats.randomSequences) << what;
}

TEST(StcgEngines, GenResultIdenticalAcrossSimEngines) {
  const auto cm = compile::compile(makeLatchModel());
  const auto runWith = [&](sim::EvalEngine engine) {
    gen::GenOptions opt;
    opt.budgetMillis = 30000;  // non-binding: the run stops on coverage
    opt.seed = 77;
    opt.solver.timeBudgetMillis = 1000;
    opt.includeConditionGoals = false;  // see test_parallel_gen.cpp
    opt.simEngine = engine;
    gen::StcgGenerator g;
    return g.generate(cm, opt);
  };
  const auto tape = runWith(sim::EvalEngine::kTape);
  EXPECT_EQ(tape.coverage.decision, 1.0)
      << "latch must reach full coverage for the comparison to be stable";
  expectIdenticalGen(tape, runWith(sim::EvalEngine::kTree), "latch engines");
}

TEST(StcgEngines, SimEngineDefaultsToTape) {
  const gen::GenOptions opt;
  EXPECT_EQ(opt.simEngine, sim::EvalEngine::kTape);
}

// ----- Satellite regressions ----------------------------------------------

TEST(EvaluatorRegression, PinnedRootsDoNotGrowOnRepeatedEval) {
  const auto v = expr::mkVar({0, "v", Type::kInt, -10, 10});
  const auto root = expr::addE(v, expr::cInt(1));
  Env env;
  env.set(0, Scalar::i(41));
  expr::Evaluator ev(env);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(sameScalar(ev.evalScalar(root), Scalar::i(42)));
  }
  EXPECT_EQ(ev.pinnedRootCount(), 1u)
      << "re-evaluating one root must pin it exactly once";
  const auto root2 = expr::subE(v, expr::cInt(1));
  (void)ev.evalScalar(root2);
  (void)ev.evalScalar(root2);
  EXPECT_EQ(ev.pinnedRootCount(), 2u);

  // Array roots go through the same dedup.
  const auto arr = expr::mkVarArray(1, "a", Type::kInt, 2);
  env.setArray(1, {Scalar::i(1), Scalar::i(2)});
  expr::Evaluator ev2(env);
  for (int i = 0; i < 50; ++i) (void)ev2.evalArray(arr);
  EXPECT_EQ(ev2.pinnedRootCount(), 1u);
}

TEST(IntervalEvaluatorRegression, PinnedRootsDoNotGrowOnRepeatedEval) {
  const auto v = expr::mkVar({0, "v", Type::kReal, -5, 5});
  const auto root = expr::mulE(v, v);
  analysis::IntervalEnv env;
  env.set(0, Interval(1.0, 2.0));
  analysis::IntervalEvaluator ev(env);
  for (int i = 0; i < 100; ++i) (void)ev.evalScalar(root);
  EXPECT_EQ(ev.pinnedRootCount(), 1u);
  const auto arr = expr::mkVarArray(1, "a", Type::kReal, 3);
  for (int i = 0; i < 50; ++i) (void)ev.evalArray(arr);
  EXPECT_EQ(ev.pinnedRootCount(), 2u);
}

TEST(EnvReserve, ReserveKeepsSetGetSemantics) {
  Env env;
  env.reserve(4);
  env.set(0, Scalar::i(10));
  env.set(3, Scalar::r(2.5));
  EXPECT_TRUE(env.has(0));
  EXPECT_TRUE(env.has(3));
  EXPECT_FALSE(env.has(2));
  EXPECT_TRUE(sameScalar(env.get(3), Scalar::r(2.5)));
  // Setting past the reserved range still grows.
  env.set(10, Scalar::b(true));
  EXPECT_TRUE(env.has(10));
  EXPECT_TRUE(env.get(10).toBool());
  EXPECT_EQ(env.size(), 3u);
  // A smaller reserve never shrinks or drops bindings.
  env.reserve(1);
  EXPECT_TRUE(env.has(10));
  EXPECT_TRUE(sameScalar(env.get(0), Scalar::i(10)));
}

TEST(EnvReserve, CompiledModelVarCountCoversAllIds) {
  for (const auto& info : bench::allBenchModels()) {
    const auto cm = compile::compile(info.build());
    const std::size_t n = cm.varCount();
    for (const auto& in : cm.inputs) {
      EXPECT_LT(static_cast<std::size_t>(in.info.id), n) << info.name;
    }
    for (const auto& sv : cm.states) {
      EXPECT_LT(static_cast<std::size_t>(sv.id), n) << info.name;
    }
  }
}

}  // namespace
}  // namespace stcg
