// Tape-JIT tests: the native-code backend must be bit-identical to the
// interpreted TapeExecutor (which itself is pinned to the tree walker),
// and must degrade gracefully — never crash, never silently diverge —
// when the environment has no C compiler or a corrupt module cache.
//
//   - differential fuzz over random expression DAGs (every Op kind,
//     arrays included): JIT vs interpreter on both the raw and the
//     pass-pipeline-optimized tape,
//   - distance overlay: JIT-backed DistanceTape vs the interpreted one
//     over rebind + dirty-cone update sequences,
//   - batch lanes: runBatch vs per-lane scalar interpreter runs,
//   - Simulator sweep across all eight bench models (outputs, snapshots,
//     coverage events) under kJit vs kTape,
//   - StcgGenerator result pinned across {tree, tape, jit},
//   - the saturating real->int cast edge cases pinned bitwise across all
//     engines (satellite regression for the shared helper),
//   - environment-failure paths: bad STCG_JIT_CC falls back with a
//     diagnostic, a corrupted cached .so is discarded and rebuilt,
//   - option validation: out-of-range jobs/batch rejected with a typed
//     EvalError at the library boundary.
//
// Every test that needs a working toolchain first probes availability and
// GTEST_SKIPs when the environment cannot JIT at all, mirroring the
// library's own fallback.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include <unistd.h>

#include "benchmodels/benchmodels.h"
#include "compile/compiler.h"
#include "coverage/coverage.h"
#include "expr/builder.h"
#include "expr/eval.h"
#include "expr/jit.h"
#include "expr/tape.h"
#include "model/model.h"
#include "sim/simulator.h"
#include "solver/distance_tape.h"
#include "solver/local_search.h"
#include "solver/solver.h"
#include "stcg/stcg_generator.h"
#include "util/rng.h"

#include "fuzz_dag.h"

namespace stcg {
namespace {

namespace fs = std::filesystem;

using expr::Scalar;
using expr::Type;
using expr::VarInfo;
using fuzz::makeFuzzDag;
using fuzz::makeJitArm;
using fuzz::randomEnv;
using fuzz::sameBits;
using fuzz::sameScalar;

/// One-time probe: can this environment JIT at all? (compiler + dlopen)
bool jitAvailable() {
  static const bool ok = [] {
    expr::TapeBuilder b;
    const VarInfo v{0, "x", Type::kReal, -10, 10};
    (void)b.addRoot(expr::addE(expr::mkVar(v), expr::cReal(1.0)));
    std::string why;
    return expr::TapeJit::compile(b.finish(), {}, &why) != nullptr;
  }();
  return ok;
}

#define REQUIRE_JIT()                                                     \
  do {                                                                    \
    if (!jitAvailable()) GTEST_SKIP() << "no JIT toolchain available";    \
  } while (0)

// ----- Differential fuzz: JIT vs interpreter over every Op kind ------------

TEST(JitFuzz, MatchesInterpreterOnRawAndOptimizedTapes) {
  REQUIRE_JIT();
  Rng rng(20260807);
  for (int trial = 0; trial < 25; ++trial) {
    Rng dagRng = rng.fork(trial);
    auto dag = makeFuzzDag(dagRng, /*withArrays=*/true);
    std::vector<expr::ExprPtr> roots;
    for (const auto& p : {&dag.bools, &dag.ints, &dag.reals}) {
      for (const auto& e : *p) roots.push_back(e);
    }
    const auto pair = fuzz::buildTapePair(roots);

    for (const bool optimized : {false, true}) {
      const auto& tape = optimized ? pair.optimized : pair.raw;
      const auto& slots = optimized ? pair.optSlots : pair.rawSlots;
      std::string why;
      auto jit = makeJitArm(tape, &why);
      ASSERT_NE(jit, nullptr) << "trial " << trial << ": " << why;
      expr::TapeExecutor interp(tape);

      for (int probe = 0; probe < 4; ++probe) {
        const expr::Env env = randomEnv(dagRng, dag);
        interp.bindEnv(env);
        jit->bindEnv(env);
        interp.run();
        jit->run();
        for (std::size_t i = 0; i < slots.size(); ++i) {
          if (!slots[i].valid()) continue;
          ASSERT_TRUE(sameScalar(interp.scalar(slots[i]), jit->scalar(slots[i])))
              << "trial " << trial << (optimized ? " opt" : " raw")
              << " probe " << probe << " root " << i << ": interp="
              << interp.scalar(slots[i]).toString()
              << " jit=" << jit->scalar(slots[i]).toString();
        }
      }
    }
  }
}

TEST(JitFuzz, ConeReplayMatchesInterpreterConeReplay) {
  REQUIRE_JIT();
  Rng rng(424242);
  for (int trial = 0; trial < 10; ++trial) {
    Rng dagRng = rng.fork(trial);
    auto dag = makeFuzzDag(dagRng, /*withArrays=*/false);
    std::vector<expr::ExprPtr> roots;
    for (const auto& e : dag.reals) roots.push_back(e);
    for (const auto& e : dag.ints) roots.push_back(e);
    const auto pair = fuzz::buildTapePair(roots);

    expr::TapeJit::Options jopt;
    for (const auto& v : dag.vars) jopt.coneVars.push_back(v.id);
    std::string why;
    auto jit = makeJitArm(pair.optimized, &why, jopt);
    ASSERT_NE(jit, nullptr) << why;
    expr::TapeExecutor interp(pair.optimized);

    const expr::Env env = randomEnv(dagRng, dag);
    interp.bindEnv(env);
    jit->bindEnv(env);
    interp.run();
    jit->run();
    for (int mut = 0; mut < 30; ++mut) {
      const auto& v = dag.vars[dagRng.index(dag.vars.size())];
      const Scalar s = fuzz::randomScalarFor(dagRng, v);
      interp.setVar(v.id, s);
      jit->setVar(v.id, s);
      interp.runCone(v.id);
      jit->runCone(v.id);
      for (const auto& slot : pair.optSlots) {
        if (!slot.valid()) continue;
        ASSERT_TRUE(sameScalar(interp.scalar(slot), jit->scalar(slot)))
            << "trial " << trial << " mutation " << mut;
      }
    }
  }
}

// ----- Distance overlay: JIT DistanceTape vs interpreted DistanceTape ------

TEST(JitDistance, OverlayMatchesInterpreterOverRebindsAndUpdates) {
  REQUIRE_JIT();
  Rng rng(777001);
  int jitInstances = 0;
  for (int trial = 0; trial < 20; ++trial) {
    Rng dagRng = rng.fork(trial);
    auto dag = makeFuzzDag(dagRng, /*withArrays=*/false);
    const auto& goal = dag.bools[dagRng.index(dag.bools.size())];

    solver::DistanceTape interp(goal, dag.vars);
    solver::DistanceTape jitted(goal, dag.vars, /*useJit=*/true);
    if (jitted.usingJit()) ++jitInstances;

    std::vector<double> point(dag.vars.size());
    for (int probe = 0; probe < 3; ++probe) {
      for (std::size_t i = 0; i < point.size(); ++i) {
        point[i] = dagRng.uniformReal(-50.0, 50.0);
      }
      ASSERT_TRUE(sameBits(interp.rebind(point), jitted.rebind(point)))
          << "trial " << trial << " probe " << probe;
      for (int mut = 0; mut < 20; ++mut) {
        const std::size_t vi = dagRng.index(dag.vars.size());
        const double val = dagRng.uniformReal(-50.0, 50.0);
        ASSERT_TRUE(sameBits(interp.update(vi, val), jitted.update(vi, val)))
            << "trial " << trial << " probe " << probe << " mutation " << mut;
      }
    }
  }
  EXPECT_EQ(jitInstances, 20) << "toolchain is available, every DistanceTape "
                                 "should have engaged the JIT";
}

TEST(JitDistance, LocalSearchJitEngineMatchesTapeEngine) {
  REQUIRE_JIT();
  const VarInfo x{201, "x", Type::kReal, -10, 10};
  const VarInfo y{202, "y", Type::kReal, -10, 10};
  const auto dx = expr::subE(expr::mkVar(x), expr::cReal(3.0));
  const auto dy = expr::addE(expr::mkVar(y), expr::cReal(2.0));
  const auto goal = expr::leE(
      expr::addE(expr::mulE(dx, dx), expr::mulE(dy, dy)), expr::cReal(0.5));

  solver::SolveOptions so;
  so.seed = 5;
  so.timeBudgetMillis = 5000;
  solver::LocalSearchSolver tapeSolver(so);
  solver::LocalSearchSolver jitSolver(so,
                                      solver::LocalSearchSolver::Engine::kJit);
  const auto ra = tapeSolver.solve(goal, {x, y});
  const auto rb = jitSolver.solve(goal, {x, y});
  ASSERT_TRUE(ra.sat());
  ASSERT_TRUE(rb.sat());
  EXPECT_EQ(ra.stats.samplesTried, rb.stats.samplesTried);
  EXPECT_TRUE(
      sameBits(ra.model.get(x.id).toReal(), rb.model.get(x.id).toReal()));
  EXPECT_TRUE(
      sameBits(ra.model.get(y.id).toReal(), rb.model.get(y.id).toReal()));
}

// ----- Batch lanes ---------------------------------------------------------

TEST(JitLanes, RunBatchMatchesScalarInterpreterPerLane) {
  REQUIRE_JIT();
  Rng rng(90210);
  for (int trial = 0; trial < 8; ++trial) {
    Rng dagRng = rng.fork(trial);
    auto dag = makeFuzzDag(dagRng, /*withArrays=*/true);
    std::vector<expr::ExprPtr> roots;
    for (const auto& e : dag.reals) roots.push_back(e);
    for (const auto& e : dag.bools) roots.push_back(e);
    const auto pair = fuzz::buildTapePair(roots);

    constexpr int kLanes = 5;
    std::string why;
    auto jit = expr::TapeJit::compile(pair.optimized, {}, &why);
    ASSERT_NE(jit, nullptr) << why;
    expr::JitTapeExecutor lanes(pair.optimized, jit, kLanes);
    expr::TapeExecutor interp(pair.optimized);

    std::vector<expr::Env> envs;
    for (int l = 0; l < kLanes; ++l) {
      envs.push_back(randomEnv(dagRng, dag));
      for (const auto& v : dag.vars) {
        lanes.setVarLane(l, v.id, envs[static_cast<std::size_t>(l)].get(v.id));
      }
      lanes.setArrayVarLane(
          l, fuzz::kRealArrId,
          envs[static_cast<std::size_t>(l)].getArray(fuzz::kRealArrId));
      lanes.setArrayVarLane(
          l, fuzz::kIntArrId,
          envs[static_cast<std::size_t>(l)].getArray(fuzz::kIntArrId));
    }
    lanes.runBatch(kLanes);
    for (int l = 0; l < kLanes; ++l) {
      interp.bindEnv(envs[static_cast<std::size_t>(l)]);
      interp.run();
      for (const auto& slot : pair.optSlots) {
        if (!slot.valid()) continue;
        ASSERT_TRUE(sameScalar(interp.scalar(slot), lanes.scalarLane(l, slot)))
            << "trial " << trial << " lane " << l;
      }
    }
  }
}

// ----- Simulator: kJit vs kTape across the bench suite ---------------------

class JitSimSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(JitSimSweep, JitAndTapeEnginesAgreeStepForStep) {
  REQUIRE_JIT();
  const auto cm = compile::compile(bench::buildBenchModel(GetParam()));
  sim::Simulator jitSim(cm, sim::EvalEngine::kJit);
  sim::Simulator tape(cm, sim::EvalEngine::kTape);
  ASSERT_EQ(jitSim.engine(), sim::EvalEngine::kJit)
      << jitSim.jitFallbackReason();
  coverage::CoverageTracker covJit(cm);
  coverage::CoverageTracker covTape(cm);

  Rng rng(2026);
  sim::StateSnapshot mark = jitSim.snapshot();
  for (int stepNo = 0; stepNo < 250; ++stepNo) {
    if (stepNo == 100) mark = jitSim.snapshot();
    if (stepNo == 200) {
      jitSim.restore(mark);
      tape.restore(mark);
    }
    const auto in = sim::randomInput(cm, rng);
    const auto ra = jitSim.step(in, &covJit);
    const auto rb = tape.step(in, &covTape);
    EXPECT_EQ(ra.newlyCovered, rb.newlyCovered) << "step " << stepNo;
    EXPECT_EQ(ra.newConditionObservation, rb.newConditionObservation)
        << "step " << stepNo;
    const auto& outA = jitSim.lastOutputs();
    const auto& outB = tape.lastOutputs();
    ASSERT_EQ(outA.size(), outB.size());
    for (std::size_t i = 0; i < outA.size(); ++i) {
      EXPECT_TRUE(sameScalar(outA[i], outB[i]))
          << "step " << stepNo << " output " << i;
    }
    EXPECT_TRUE(jitSim.state() == tape.state()) << "step " << stepNo;
    EXPECT_EQ(sim::snapshotHash(jitSim.state()),
              sim::snapshotHash(tape.state()))
        << "step " << stepNo;
  }
  EXPECT_EQ(covJit.coveredBranchCount(), covTape.coveredBranchCount());
  EXPECT_EQ(covJit.decisionCoverage(), covTape.decisionCoverage());
  EXPECT_EQ(covJit.conditionCoverage(), covTape.conditionCoverage());
  EXPECT_EQ(covJit.mcdcCoverage(), covTape.mcdcCoverage());
}

INSTANTIATE_TEST_SUITE_P(AllModels, JitSimSweep,
                         ::testing::Values("CPUTask", "AFC", "TWC",
                                           "NICProtocol", "UTPC", "LANSwitch",
                                           "LEDLC", "TCP"));

// ----- End-to-end: GenResult pinned across {tree, tape, jit} ---------------

// The latch model from test_tape.cpp's engine pin: full coverage is
// reachable, so runs stop on coverage and the whole result is comparable.
model::Model makeJitLatchModel() {
  model::Model m("Latch");
  auto code = m.addInport("code", Type::kInt, 0, 100000);
  auto arm = m.addInport("arm", Type::kBool, 0, 1);
  auto latch = m.addUnitDelayHole("latched", Scalar::i(-1));
  auto latchNext = m.addSwitch("latch_next", code, arm, latch,
                               model::SwitchCriteria::kNotZero, 0.0);
  m.bindDelayInput(latch, latchNext);
  auto match = m.addRelational("match", model::RelOp::kEq, code, latch);
  auto valid = m.addCompareToConst("valid", latch, model::RelOp::kGe, 0.0);
  auto unlock = m.addLogical("unlock", model::LogicOp::kAnd, {match, valid});
  auto one = m.addConstant("one", Scalar::i(1));
  auto zero = m.addConstant("zero", Scalar::i(0));
  m.addOutport("y", m.addSwitch("out", one, unlock, zero,
                                model::SwitchCriteria::kNotZero, 0.0));
  return m;
}

TEST(JitEngines, GenResultIdenticalAcrossTreeTapeAndJit) {
  REQUIRE_JIT();
  const auto cm = compile::compile(makeJitLatchModel());
  const auto runWith = [&](sim::EvalEngine engine) {
    gen::GenOptions opt;
    opt.budgetMillis = 30000;  // non-binding: the run stops on coverage
    opt.seed = 77;
    opt.solver.timeBudgetMillis = 1000;
    opt.includeConditionGoals = false;
    opt.simEngine = engine;
    gen::StcgGenerator g;
    return g.generate(cm, opt);
  };
  const auto jit = runWith(sim::EvalEngine::kJit);
  const auto tape = runWith(sim::EvalEngine::kTape);
  const auto tree = runWith(sim::EvalEngine::kTree);
  EXPECT_EQ(tape.coverage.decision, 1.0);

  const auto expectSame = [](const gen::GenResult& a, const gen::GenResult& b,
                             const std::string& what) {
    ASSERT_EQ(a.tests.size(), b.tests.size()) << what;
    for (std::size_t i = 0; i < a.tests.size(); ++i) {
      EXPECT_EQ(a.tests[i].steps, b.tests[i].steps) << what << " test " << i;
      EXPECT_EQ(a.tests[i].goalLabel, b.tests[i].goalLabel)
          << what << " test " << i;
    }
    EXPECT_EQ(a.coverage.decision, b.coverage.decision) << what;
    EXPECT_EQ(a.coverage.condition, b.coverage.condition) << what;
    EXPECT_EQ(a.coverage.mcdc, b.coverage.mcdc) << what;
    EXPECT_EQ(a.stats.solveCalls, b.stats.solveCalls) << what;
    EXPECT_EQ(a.stats.solveSat, b.stats.solveSat) << what;
    EXPECT_EQ(a.stats.stepsExecuted, b.stats.stepsExecuted) << what;
    EXPECT_EQ(a.stats.treeNodes, b.stats.treeNodes) << what;
  };
  expectSame(jit, tape, "jit-vs-tape");
  expectSame(jit, tree, "jit-vs-tree");
}

// ----- Saturating real->int cast: edges pinned across all engines ----------

TEST(JitCast, SaturatingRealToIntEdgesBitIdenticalAcrossEngines) {
  REQUIRE_JIT();
  const VarInfo r{0, "r", Type::kReal, -1e300, 1e300};
  const auto root = expr::castE(expr::mkVar(r), Type::kInt);
  expr::TapeBuilder b;
  const auto slot = b.addRoot(root);
  const auto tape = b.finish();

  std::string why;
  auto jit = makeJitArm(tape, &why);
  ASSERT_NE(jit, nullptr) << why;
  expr::TapeExecutor interp(tape);
  expr::BatchTapeExecutor batch(tape, 2);

  const double edges[] = {
      std::numeric_limits<double>::quiet_NaN(),
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      9.2e18,
      -9.2e18,
      9.3e18,
      -9.3e18,
      static_cast<double>(std::numeric_limits<std::int64_t>::max()),
      static_cast<double>(std::numeric_limits<std::int64_t>::min()),
      -0.0,
      0.5,
      -123456.75,
  };
  for (const double v : edges) {
    const std::int64_t want = expr::saturatingRealToInt(v);

    expr::Env env;
    env.set(r.id, Scalar::r(v));
    EXPECT_EQ(expr::evaluate(root, env).toInt(), want) << v;

    interp.setVar(r.id, Scalar::r(v));
    interp.run();
    EXPECT_EQ(interp.scalar(slot).toInt(), want) << v;

    batch.setVar(0, r.id, Scalar::r(v));
    batch.setVarReal(1, r.id, v);
    batch.run();
    EXPECT_EQ(batch.scalar(slot, 0).toInt(), want) << v;
    EXPECT_EQ(batch.scalar(slot, 1).toInt(), want) << v;

    jit->setVar(r.id, Scalar::r(v));
    jit->run();
    EXPECT_EQ(jit->scalar(slot).toInt(), want) << v;
  }
  // Helper spot checks, pinning the documented mapping itself.
  EXPECT_EQ(expr::saturatingRealToInt(
                std::numeric_limits<double>::quiet_NaN()), 0);
  EXPECT_EQ(expr::saturatingRealToInt(1e19),
            std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(expr::saturatingRealToInt(-1e19),
            std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(expr::saturatingRealToInt(-2.75), -2);
}

// ----- Environment-failure paths -------------------------------------------

/// Scoped env-var override (tests only; restores the old value).
class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) old_ = old;
    ::setenv(name, value, 1);
  }
  ~EnvGuard() {
    if (old_.has_value()) {
      ::setenv(name_.c_str(), old_->c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  std::optional<std::string> old_;
};

/// A tape no other test compiles (unique constant), so nothing is memoized
/// or disk-cached for it outside the given cache dir.
std::shared_ptr<const expr::Tape> uniqueTape(double salt) {
  expr::TapeBuilder b;
  const VarInfo v{0, "x", Type::kReal, -10, 10};
  (void)b.addRoot(expr::mulE(expr::mkVar(v), expr::cReal(salt)));
  return b.finish();
}

TEST(JitFallback, BadCompilerFallsBackWithDiagnosticNotCrash) {
  REQUIRE_JIT();
  const fs::path dir =
      fs::temp_directory_path() /
      ("stcg-jit-test-badcc-" + std::to_string(::getpid()));
  fs::create_directories(dir);
  {
    EnvGuard cc("STCG_JIT_CC", "/nonexistent/definitely-not-a-compiler");
    EnvGuard cache("STCG_JIT_CACHE", dir.c_str());
    expr::jitClearCache();
    expr::clearJitDiagnostics();

    std::string why;
    auto jit = expr::TapeJit::compile(uniqueTape(1.25), {}, &why);
    EXPECT_EQ(jit, nullptr);
    EXPECT_NE(why.find("/nonexistent/definitely-not-a-compiler"),
              std::string::npos)
        << why;
    const auto diags = expr::jitDiagnostics();
    ASSERT_FALSE(diags.empty());
    EXPECT_EQ(diags.back().severity, "warning");
    EXPECT_EQ(diags.back().check, "jit-unavailable");

    // A kJit Simulator degrades to the interpreted tape and still steps.
    const auto cm = compile::compile(makeJitLatchModel());
    sim::Simulator s(cm, sim::EvalEngine::kJit);
    EXPECT_EQ(s.engine(), sim::EvalEngine::kTape);
    EXPECT_FALSE(s.jitFallbackReason().empty());
    Rng rng(1);
    coverage::CoverageTracker cov(cm);
    for (int i = 0; i < 10; ++i) {
      (void)s.step(sim::randomInput(cm, rng), &cov);
    }
  }
  expr::jitClearCache();  // drop modules memoized under the temp cache dir
  std::error_code ec;
  fs::remove_all(dir, ec);
}

TEST(JitFallback, CorruptCachedModuleIsDiscardedAndRebuilt) {
  REQUIRE_JIT();
  const fs::path dir =
      fs::temp_directory_path() /
      ("stcg-jit-test-stale-" + std::to_string(::getpid()));
  fs::create_directories(dir);
  {
    EnvGuard cache("STCG_JIT_CACHE", dir.c_str());
    expr::jitClearCache();

    const auto tape = uniqueTape(2.5);
    std::string why;
    auto first = expr::TapeJit::compile(tape, {}, &why);
    ASSERT_NE(first, nullptr) << why;
    const fs::path so = dir / ("stcg_jit_" + first->sourceHash() + ".so");
    ASSERT_TRUE(fs::exists(so));

    // Corrupt the cached object, drop the in-process memo, recompile:
    // the stale module must be detected, discarded and rebuilt — and the
    // rebuilt module must still execute correctly.
    first.reset();
    expr::jitClearCache();
    { std::ofstream(so, std::ios::trunc) << "not an ELF object"; }
    expr::clearJitDiagnostics();
    auto second = expr::TapeJit::compile(tape, {}, &why);
    ASSERT_NE(second, nullptr) << why;
    bool sawCacheNote = false;
    for (const auto& d : expr::jitDiagnostics()) {
      if (d.check == "jit-cache") sawCacheNote = true;
    }
    EXPECT_TRUE(sawCacheNote);

    expr::JitTapeExecutor ex(tape, second);
    ex.setVar(0, Scalar::r(4.0));
    ex.run();
    EXPECT_TRUE(
        sameBits(ex.scalar(tape->rootSlots()[0]).toReal(), 4.0 * 2.5));
  }
  expr::jitClearCache();
  std::error_code ec;
  fs::remove_all(dir, ec);
}

TEST(JitFallback, UnboundVariableThrowsInterpreterIdenticalError) {
  REQUIRE_JIT();
  const auto tape = uniqueTape(3.75);
  std::string why;
  auto jit = expr::TapeJit::compile(tape, {}, &why);
  ASSERT_NE(jit, nullptr) << why;
  expr::JitTapeExecutor ex(tape, jit);
  expr::TapeExecutor interp(tape);
  std::string jitMsg, interpMsg;
  try {
    ex.run();
  } catch (const expr::EvalError& e) {
    jitMsg = e.what();
  }
  try {
    interp.run();
  } catch (const expr::EvalError& e) {
    interpMsg = e.what();
  }
  EXPECT_FALSE(jitMsg.empty());
  EXPECT_EQ(jitMsg, interpMsg);
}

// ----- Option validation at the library boundary ---------------------------

TEST(OptionValidation, OutOfRangeJobsAndBatchRejectedWithTypedError) {
  const auto cm = compile::compile(makeJitLatchModel());
  gen::StcgGenerator g;

  gen::GenOptions bad;
  bad.jobs = -1;
  EXPECT_THROW((void)g.generate(cm, bad), expr::EvalError);
  bad = {};
  bad.jobs = 5000;
  EXPECT_THROW((void)g.generate(cm, bad), expr::EvalError);
  bad = {};
  bad.batch = -1;
  EXPECT_THROW((void)g.generate(cm, bad), expr::EvalError);
  bad = {};
  bad.solver.batch = 100000;
  EXPECT_THROW((void)g.generate(cm, bad), expr::EvalError);

  solver::SolveOptions so;
  so.batch = -3;
  solver::LocalSearchSolver ls(so);
  const VarInfo x{1, "x", Type::kReal, -1, 1};
  EXPECT_THROW(
      (void)ls.solve(expr::gtE(expr::mkVar(x), expr::cReal(0.0)), {x}),
      expr::EvalError);
}

}  // namespace
}  // namespace stcg
