// Batched-lane tests: the lane-for-lane bit-identity contract between
// expr::BatchTapeExecutor and the scalar TapeExecutor, and everything
// built on top of it.
//
//   - differential fuzz over random expression DAGs (every Op kind,
//     arrays included): each lane of an 8-wide batch vs its own scalar
//     executor, across repeated runs with re-bound variables,
//   - targeted per-lane semantics: division/modulo by zero in one lane
//     only, out-of-range select/store indices clamped per lane,
//   - the unbound-variable error naming both the variable and the lane,
//   - BatchDistanceTape lane distances vs scalar DistanceTape rebinds,
//   - LocalSearchSolver batch=8 vs batch=1 (identical search path,
//     samples, and model bits),
//   - BatchSimulator vs scalar Simulator across all eight bench models
//     (observations, outputs, states, coverage; restore mid-run),
//   - replaySuite batched vs scalar tracker equality,
//   - end-to-end: StcgGenerator results pinned across batch x jobs,
//     including a local-search-solver run that batches neighbor scoring.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "benchmodels/benchmodels.h"
#include "compile/compiler.h"
#include "coverage/coverage.h"
#include "expr/batch_tape.h"
#include "expr/builder.h"
#include "expr/eval.h"
#include "expr/tape.h"
#include "model/model.h"
#include "sim/batch_simulator.h"
#include "sim/simulator.h"
#include "solver/distance_tape.h"
#include "solver/local_search.h"
#include "solver/solver.h"
#include "stcg/stcg_generator.h"
#include "util/rng.h"

#include "fuzz_dag.h"

namespace stcg {
namespace {

using fuzz::FuzzDag;
using fuzz::kRealArrId;
using fuzz::makeFuzzDag;
using fuzz::randomEnv;
using fuzz::randomScalarFor;
using fuzz::sameBits;
using fuzz::sameScalar;

using expr::Env;
using expr::ExprPtr;
using expr::Scalar;
using expr::SlotRef;
using expr::Type;
using expr::VarInfo;

constexpr int kLanes = 8;

// ----- Differential fuzz: every lane vs its own scalar executor ------------

TEST(BatchTapeFuzz, LanesMatchScalarTapeBitwise) {
  Rng rng(986);
  for (int trial = 0; trial < 15; ++trial) {
    FuzzDag d = makeFuzzDag(rng, /*withArrays=*/true);
    expr::TapeBuilder b;
    std::vector<ExprPtr> roots;
    std::vector<SlotRef> slots;
    const auto addRootFrom = [&](const std::vector<ExprPtr>& pool) {
      const auto& e = pool[rng.index(pool.size())];
      roots.push_back(e);
      slots.push_back(b.addRoot(e));
    };
    for (int i = 0; i < 3; ++i) addRootFrom(d.bools);
    for (int i = 0; i < 2; ++i) {
      addRootFrom(d.ints);
      addRootFrom(d.reals);
    }
    addRootFrom(d.realArrays);
    addRootFrom(d.intArrays);

    const auto tape = b.finish();
    expr::BatchTapeExecutor bx(tape, kLanes);
    ASSERT_EQ(bx.lanes(), kLanes);
    std::vector<std::unique_ptr<expr::TapeExecutor>> refs;
    std::vector<Env> envs;
    for (int l = 0; l < kLanes; ++l) {
      envs.push_back(randomEnv(rng, d));
      refs.push_back(std::make_unique<expr::TapeExecutor>(tape));
      refs.back()->bindEnv(envs.back());
      bx.bindEnv(l, envs.back());
    }
    const auto runAndCheck = [&](const char* what) {
      bx.run();
      for (int l = 0; l < kLanes; ++l) {
        refs[static_cast<std::size_t>(l)]->run();
        const auto& ref = *refs[static_cast<std::size_t>(l)];
        for (std::size_t i = 0; i < roots.size(); ++i) {
          if (roots[i]->isArray()) {
            const auto& a = ref.array(slots[i]);
            const auto& bt = bx.array(slots[i], l);
            ASSERT_EQ(a.size(), bt.size())
                << what << " trial " << trial << " lane " << l << " root " << i;
            for (std::size_t j = 0; j < a.size(); ++j) {
              EXPECT_TRUE(sameScalar(a[j], bt[j]))
                  << what << " trial " << trial << " lane " << l << " root "
                  << i << " [" << j << "]";
            }
          } else {
            EXPECT_TRUE(sameScalar(ref.scalar(slots[i]), bx.scalar(slots[i], l)))
                << what << " trial " << trial << " lane " << l << " root " << i;
            EXPECT_TRUE(sameBits(ref.scalar(slots[i]).toReal(),
                                 bx.scalarToReal(slots[i], l)))
                << what << " trial " << trial << " lane " << l << " root " << i;
            EXPECT_EQ(ref.scalar(slots[i]).toBool(),
                      bx.scalarToBool(slots[i], l))
                << what << " trial " << trial << " lane " << l << " root " << i;
          }
        }
      }
    };
    runAndCheck("initial");

    // Re-bind a few variables per lane and run the live executors again:
    // stale lane payloads from the previous pass must never leak.
    for (int round = 0; round < 3; ++round) {
      for (int l = 0; l < kLanes; ++l) {
        for (int m = 0; m < 2; ++m) {
          const auto& v = d.vars[rng.index(d.vars.size())];
          const Scalar nv = randomScalarFor(rng, v);
          refs[static_cast<std::size_t>(l)]->setVar(v.id, nv);
          bx.setVar(l, v.id, nv);
        }
        if (rng.chance(0.5)) {
          std::vector<Scalar> ar;
          for (int i = 0; i < 4; ++i) {
            ar.push_back(Scalar::r(rng.uniformReal(-50.0, 50.0)));
          }
          refs[static_cast<std::size_t>(l)]->setArrayVar(kRealArrId, ar);
          bx.setArrayVar(l, kRealArrId, ar);
        }
      }
      runAndCheck("rebound");
    }
  }
}

// ----- Differential fuzz: batch lanes on the optimized tape ----------------

TEST(BatchTapeFuzz, LanesOnOptimizedTapeMatchScalarRawBitwise) {
  Rng rng(44203);
  for (int trial = 0; trial < 12; ++trial) {
    FuzzDag d = makeFuzzDag(rng, /*withArrays=*/true);
    std::vector<ExprPtr> roots;
    const auto addRootFrom = [&](const std::vector<ExprPtr>& pool) {
      roots.push_back(pool[rng.index(pool.size())]);
    };
    for (int i = 0; i < 3; ++i) addRootFrom(d.bools);
    for (int i = 0; i < 2; ++i) {
      addRootFrom(d.ints);
      addRootFrom(d.reals);
    }
    addRootFrom(d.realArrays);
    addRootFrom(d.intArrays);

    // Batch lanes execute the optimized tape (slot sharing shrinks the
    // B-wide SoA frame); the oracle is a scalar executor per lane on the
    // RAW tape, so this differential crosses both the pass pipeline and
    // the lane kernels at once.
    const fuzz::TapePair p = fuzz::buildTapePair(roots);
    expr::BatchTapeExecutor bx(p.optimized, kLanes);
    std::vector<std::unique_ptr<expr::TapeExecutor>> refs;
    for (int l = 0; l < kLanes; ++l) {
      const Env env = randomEnv(rng, d);
      refs.push_back(std::make_unique<expr::TapeExecutor>(p.raw));
      refs.back()->bindEnv(env);
      bx.bindEnv(l, env);
    }
    bx.run();
    for (int l = 0; l < kLanes; ++l) {
      auto& ref = *refs[static_cast<std::size_t>(l)];
      ref.run();
      for (std::size_t i = 0; i < roots.size(); ++i) {
        if (roots[i]->isArray()) {
          const auto& a = ref.array(p.rawSlots[i]);
          const auto& bt = bx.array(p.optSlots[i], l);
          ASSERT_EQ(a.size(), bt.size())
              << "trial " << trial << " lane " << l << " root " << i;
          for (std::size_t j = 0; j < a.size(); ++j) {
            EXPECT_TRUE(sameScalar(a[j], bt[j]))
                << "trial " << trial << " lane " << l << " root " << i << " ["
                << j << "]";
          }
        } else {
          EXPECT_TRUE(
              sameScalar(ref.scalar(p.rawSlots[i]), bx.scalar(p.optSlots[i], l)))
              << "trial " << trial << " lane " << l << " root " << i;
        }
      }
    }
  }
}

// ----- Targeted per-lane guards and clamps ---------------------------------

TEST(BatchTape, PerLaneDivModGuardsAndIndexClampsMatchScalar) {
  const VarInfo i0{0, "i0", Type::kInt, -100, 100};
  const VarInfo i1{1, "i1", Type::kInt, -100, 100};
  const VarInfo r0{2, "r0", Type::kReal, -100, 100};
  const VarInfo r1{3, "r1", Type::kReal, -100, 100};
  const VarInfo ix{4, "ix", Type::kInt, -10, 10};
  const auto arr = expr::mkVarArray(5, "arr", Type::kReal, 3);

  expr::TapeBuilder b;
  std::vector<SlotRef> slots;
  slots.push_back(b.addRoot(expr::divE(expr::mkVar(i0), expr::mkVar(i1))));
  slots.push_back(b.addRoot(expr::modE(expr::mkVar(i0), expr::mkVar(i1))));
  slots.push_back(b.addRoot(expr::divE(expr::mkVar(r0), expr::mkVar(r1))));
  slots.push_back(b.addRoot(expr::modE(expr::mkVar(r0), expr::mkVar(r1))));
  slots.push_back(b.addRoot(expr::selectE(arr, expr::mkVar(ix))));
  slots.push_back(
      b.addRoot(expr::storeE(arr, expr::mkVar(ix), expr::mkVar(r0))));

  // One misbehaving lane at a time: int zero divisor, real zero divisor,
  // index below range, index past the end, plus two ordinary lanes.
  struct LaneEnv {
    std::int64_t i0v, i1v;
    double r0v, r1v;
    std::int64_t ixv;
  };
  const std::vector<LaneEnv> laneEnvs = {
      {7, 3, 5.5, 2.0, 1},    {7, 0, 5.5, 2.0, 0},  {-9, -4, 5.5, 0.0, 2},
      {-9, 2, -3.25, 1.5, -5}, {4, -1, 8.0, -2.0, 9}, {0, 0, 0.0, 0.0, 0},
  };
  const int B = static_cast<int>(laneEnvs.size());

  const auto tape = b.finish();
  expr::BatchTapeExecutor bx(tape, B);
  std::vector<std::unique_ptr<expr::TapeExecutor>> refs;
  for (int l = 0; l < B; ++l) {
    const LaneEnv& le = laneEnvs[static_cast<std::size_t>(l)];
    Env env;
    env.set(i0.id, Scalar::i(le.i0v));
    env.set(i1.id, Scalar::i(le.i1v));
    env.set(r0.id, Scalar::r(le.r0v));
    env.set(r1.id, Scalar::r(le.r1v));
    env.set(ix.id, Scalar::i(le.ixv));
    env.setArray(5, {Scalar::r(1.5), Scalar::r(-2.5), Scalar::r(4.0)});
    refs.push_back(std::make_unique<expr::TapeExecutor>(tape));
    refs.back()->bindEnv(env);
    bx.bindEnv(l, env);
  }
  bx.run();
  for (int l = 0; l < B; ++l) {
    refs[static_cast<std::size_t>(l)]->run();
    const auto& ref = *refs[static_cast<std::size_t>(l)];
    for (std::size_t i = 0; i < slots.size(); ++i) {
      if (slots[i].isArray) {
        const auto& a = ref.array(slots[i]);
        const auto& bt = bx.array(slots[i], l);
        ASSERT_EQ(a.size(), bt.size()) << "lane " << l << " root " << i;
        for (std::size_t j = 0; j < a.size(); ++j) {
          EXPECT_TRUE(sameScalar(a[j], bt[j]))
              << "lane " << l << " root " << i << " [" << j << "]";
        }
      } else {
        EXPECT_TRUE(sameScalar(ref.scalar(slots[i]), bx.scalar(slots[i], l)))
            << "lane " << l << " root " << i;
      }
    }
  }
  // Spot-check the guards really fired: lane 1 divides by int zero.
  EXPECT_TRUE(sameScalar(bx.scalar(slots[0], 1), Scalar::i(0)));
  EXPECT_TRUE(sameScalar(bx.scalar(slots[1], 1), Scalar::i(0)));
}

TEST(BatchTape, UnboundVariableNamesLaneAndVariable) {
  const VarInfo x{0, "x", Type::kInt, -10, 10};
  const VarInfo y{1, "lonely_y", Type::kInt, -10, 10};
  expr::TapeBuilder b;
  const SlotRef root = b.addRoot(expr::addE(expr::mkVar(x), expr::mkVar(y)));
  expr::BatchTapeExecutor bx(b.finish(), 2);
  bx.setVar(0, x.id, Scalar::i(1));
  bx.setVar(0, y.id, Scalar::i(2));
  bx.setVar(1, x.id, Scalar::i(3));
  try {
    bx.run();
    FAIL() << "expected EvalError for the unbound (variable, lane) pair";
  } catch (const expr::EvalError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("lonely_y"), std::string::npos) << what;
    EXPECT_NE(what.find("lane 1"), std::string::npos) << what;
  }
  bx.setVar(1, y.id, Scalar::i(4));
  bx.run();
  EXPECT_TRUE(sameScalar(bx.scalar(root, 0), Scalar::i(3)));
  EXPECT_TRUE(sameScalar(bx.scalar(root, 1), Scalar::i(7)));
}

// ----- BatchDistanceTape vs scalar DistanceTape ----------------------------

TEST(BatchDistance, LaneDistancesMatchScalarRebindBitwise) {
  Rng rng(31337);
  for (int trial = 0; trial < 12; ++trial) {
    FuzzDag d = makeFuzzDag(rng, /*withArrays=*/false);
    ExprPtr goal = d.bools[rng.index(d.bools.size())];
    goal = expr::andE(std::move(goal), d.bools[rng.index(d.bools.size())]);
    goal = expr::orE(std::move(goal), d.bools[rng.index(d.bools.size())]);

    solver::DistanceTape dt(goal, d.vars);
    solver::BatchDistanceTape bdt(goal, d.vars, kLanes);
    ASSERT_EQ(bdt.lanes(), kLanes);

    const auto randomCoord = [&](const VarInfo& v) -> double {
      if (v.type == Type::kReal) return rng.uniformReal(v.lo, v.hi);
      return static_cast<double>(
          rng.uniformInt(static_cast<std::int64_t>(v.lo),
                         static_cast<std::int64_t>(v.hi)));
    };
    for (int round = 0; round < 3; ++round) {
      std::vector<std::vector<double>> points;
      for (int l = 0; l < kLanes; ++l) {
        std::vector<double> p(d.vars.size());
        for (std::size_t i = 0; i < p.size(); ++i) {
          p[i] = randomCoord(d.vars[i]);
        }
        bdt.setPoint(l, p);
        points.push_back(std::move(p));
      }
      bdt.run();
      for (int l = 0; l < kLanes; ++l) {
        EXPECT_TRUE(sameBits(bdt.distance(l),
                             dt.rebind(points[static_cast<std::size_t>(l)])))
            << "trial " << trial << " round " << round << " lane " << l;
      }
    }
  }
}

// ----- LocalSearchSolver: batch width never changes the search -------------

TEST(LocalSearchBatch, BatchedNeighborScoringIsBitIdenticalToScalar) {
  const VarInfo x{201, "x", Type::kReal, -10, 10};
  const VarInfo y{202, "y", Type::kReal, -10, 10};
  const auto dx = expr::subE(expr::mkVar(x), expr::cReal(3.0));
  const auto dy = expr::addE(expr::mkVar(y), expr::cReal(2.0));
  const auto goal = expr::leE(
      expr::addE(expr::mulE(dx, dx), expr::mulE(dy, dy)), expr::cReal(0.5));

  const auto runWith = [&](int batch) {
    solver::SolveOptions so;
    so.seed = 5;
    so.timeBudgetMillis = 5000;  // generous: every run terminates on SAT
    so.batch = batch;
    solver::LocalSearchSolver s(so);
    return s.solve(goal, {x, y});
  };
  const auto scalar = runWith(1);
  ASSERT_TRUE(scalar.sat());
  for (const int batch : {3, 8, 16}) {
    const auto batched = runWith(batch);
    ASSERT_TRUE(batched.sat()) << "batch " << batch;
    EXPECT_EQ(scalar.stats.samplesTried, batched.stats.samplesTried)
        << "batch " << batch
        << ": committing the sequential accept order must preserve the "
           "candidate count exactly";
    EXPECT_TRUE(sameBits(scalar.model.get(x.id).toReal(),
                         batched.model.get(x.id).toReal()))
        << "batch " << batch;
    EXPECT_TRUE(sameBits(scalar.model.get(y.id).toReal(),
                         batched.model.get(y.id).toReal()))
        << "batch " << batch;
  }
}

// ----- BatchSimulator vs scalar Simulator on the bench suite ---------------

class BatchSimSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(BatchSimSweep, LanesAgreeWithScalarSimulatorsStepForStep) {
  const auto cm = compile::compile(bench::buildBenchModel(GetParam()));
  constexpr int B = 4;
  sim::BatchSimulator bsim(cm, B);
  ASSERT_EQ(bsim.lanes(), B);
  std::vector<std::unique_ptr<sim::Simulator>> sims;
  std::vector<std::unique_ptr<coverage::CoverageTracker>> covScalar;
  std::vector<std::unique_ptr<coverage::CoverageTracker>> covBatch;
  for (int l = 0; l < B; ++l) {
    sims.push_back(std::make_unique<sim::Simulator>(cm));
    covScalar.push_back(std::make_unique<coverage::CoverageTracker>(cm));
    covBatch.push_back(std::make_unique<coverage::CoverageTracker>(cm));
  }

  Rng rng(60299);
  std::vector<sim::StateSnapshot> marks(B);
  std::vector<sim::InputVector> ins(B);
  std::vector<const sim::InputVector*> inPtrs(B);
  sim::StepObservationBatch obs;
  for (int stepNo = 0; stepNo < 150; ++stepNo) {
    if (stepNo == 60) {
      for (int l = 0; l < B; ++l) marks[l] = bsim.state(l);
    }
    if (stepNo == 120) {  // exercise restore on every lane
      for (int l = 0; l < B; ++l) {
        bsim.restore(l, marks[l]);
        sims[static_cast<std::size_t>(l)]->restore(marks[l]);
      }
    }
    for (int l = 0; l < B; ++l) {
      ins[static_cast<std::size_t>(l)] = sim::randomInput(cm, rng);
      inPtrs[static_cast<std::size_t>(l)] = &ins[static_cast<std::size_t>(l)];
    }
    bsim.stepBatch(inPtrs, obs);
    for (int l = 0; l < B; ++l) {
      auto& scalarSim = *sims[static_cast<std::size_t>(l)];
      const auto rs =
          scalarSim.step(ins[static_cast<std::size_t>(l)],
                         covScalar[static_cast<std::size_t>(l)].get());
      const auto rb = sim::recordObservation(
          cm, obs, l, *covBatch[static_cast<std::size_t>(l)]);
      EXPECT_EQ(rs.newlyCovered, rb.newlyCovered)
          << "step " << stepNo << " lane " << l;
      EXPECT_EQ(rs.newConditionObservation, rb.newConditionObservation)
          << "step " << stepNo << " lane " << l;
      const auto& outS = scalarSim.lastOutputs();
      ASSERT_EQ(outS.size(), obs.outputCount());
      for (std::size_t i = 0; i < outS.size(); ++i) {
        EXPECT_TRUE(sameScalar(outS[i], obs.output(l, i)))
            << "step " << stepNo << " lane " << l << " output " << i;
      }
      EXPECT_TRUE(scalarSim.state() == bsim.state(l))
          << "step " << stepNo << " lane " << l;
      EXPECT_EQ(sim::snapshotHash(scalarSim.state()),
                sim::snapshotHash(bsim.state(l)))
          << "step " << stepNo << " lane " << l;
    }
  }
  for (int l = 0; l < B; ++l) {
    const auto& cs = *covScalar[static_cast<std::size_t>(l)];
    const auto& cb = *covBatch[static_cast<std::size_t>(l)];
    EXPECT_EQ(cs.coveredBranchCount(), cb.coveredBranchCount()) << l;
    EXPECT_EQ(cs.decisionCoverage(), cb.decisionCoverage()) << l;
    EXPECT_EQ(cs.conditionCoverage(), cb.conditionCoverage()) << l;
    EXPECT_EQ(cs.mcdcCoverage(), cb.mcdcCoverage()) << l;
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, BatchSimSweep,
                         ::testing::Values("CPUTask", "AFC", "TWC",
                                           "NICProtocol", "UTPC", "LANSwitch",
                                           "LEDLC", "TCP"));

// ----- replaySuite: batched lanes equal the scalar replay ------------------

TEST(ReplaySuiteBatch, BatchedReplayMatchesScalarTrackerOnEveryModel) {
  for (const auto& info : bench::allBenchModels()) {
    const auto cm = compile::compile(info.build());
    Rng rng(777);
    std::vector<gen::TestCase> tests;
    // Uneven lengths (including an empty test) so lanes drift out of
    // phase and the work queue reassigns lanes mid-run.
    for (const int len : {5, 0, 3, 11, 1, 7, 2, 4, 9}) {
      gen::TestCase tc;
      for (int i = 0; i < len; ++i) {
        tc.steps.push_back(sim::randomInput(cm, rng));
      }
      tests.push_back(std::move(tc));
    }
    const auto scalar = gen::replaySuite(cm, tests, {}, 1);
    for (const int batch : {3, 8, 32}) {
      const auto batched = gen::replaySuite(cm, tests, {}, batch);
      EXPECT_EQ(scalar.coveredBranchCount(), batched.coveredBranchCount())
          << info.name << " batch " << batch;
      EXPECT_EQ(scalar.decisionCoverage(), batched.decisionCoverage())
          << info.name << " batch " << batch;
      EXPECT_EQ(scalar.conditionCoverage(), batched.conditionCoverage())
          << info.name << " batch " << batch;
      EXPECT_EQ(scalar.mcdcCoverage(), batched.mcdcCoverage())
          << info.name << " batch " << batch;
    }
  }
}

// ----- End-to-end: GenResult pinned across batch x jobs --------------------

// The latch model from the parallel-determinism tests: deep state, full
// branch coverage reachable, so runs terminate on coverage (not the wall
// clock) and the whole GenResult is comparable.
model::Model makeLatchModel() {
  model::Model m("Latch");
  auto code = m.addInport("code", Type::kInt, 0, 100000);
  auto arm = m.addInport("arm", Type::kBool, 0, 1);
  auto latch = m.addUnitDelayHole("latched", Scalar::i(-1));
  auto latchNext = m.addSwitch("latch_next", code, arm, latch,
                               model::SwitchCriteria::kNotZero, 0.0);
  m.bindDelayInput(latch, latchNext);
  auto match = m.addRelational("match", model::RelOp::kEq, code, latch);
  auto valid = m.addCompareToConst("valid", latch, model::RelOp::kGe, 0.0);
  auto unlock = m.addLogical("unlock", model::LogicOp::kAnd, {match, valid});
  auto one = m.addConstant("one", Scalar::i(1));
  auto zero = m.addConstant("zero", Scalar::i(0));
  m.addOutport("y", m.addSwitch("out", one, unlock, zero,
                                model::SwitchCriteria::kNotZero, 0.0));
  return m;
}

model::Model makeAnd2Model() {
  model::Model m("and2");
  auto a = m.addInport("a", Type::kBool, 0, 1);
  auto b = m.addInport("b", Type::kBool, 0, 1);
  auto cond = m.addLogical("ab", model::LogicOp::kAnd, {a, b});
  auto one = m.addConstant("one", Scalar::i(1));
  auto zero = m.addConstant("zero", Scalar::i(0));
  m.addOutport("y", m.addSwitch("sw", one, cond, zero,
                                model::SwitchCriteria::kNotZero, 0.0));
  return m;
}

void expectIdenticalGen(const gen::GenResult& a, const gen::GenResult& b,
                        const std::string& what) {
  ASSERT_EQ(a.tests.size(), b.tests.size()) << what;
  for (std::size_t i = 0; i < a.tests.size(); ++i) {
    EXPECT_EQ(a.tests[i].steps, b.tests[i].steps) << what << " test " << i;
    EXPECT_EQ(a.tests[i].origin, b.tests[i].origin) << what << " test " << i;
    EXPECT_EQ(a.tests[i].goalLabel, b.tests[i].goalLabel)
        << what << " test " << i;
  }
  ASSERT_EQ(a.events.size(), b.events.size()) << what;
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].decisionCoverage, b.events[i].decisionCoverage)
        << what << " event " << i;
    EXPECT_EQ(a.events[i].origin, b.events[i].origin)
        << what << " event " << i;
  }
  EXPECT_EQ(a.coverage.decision, b.coverage.decision) << what;
  EXPECT_EQ(a.coverage.condition, b.coverage.condition) << what;
  EXPECT_EQ(a.coverage.mcdc, b.coverage.mcdc) << what;
  EXPECT_EQ(a.coverage.coveredBranches, b.coverage.coveredBranches) << what;
  EXPECT_EQ(a.stats.solveCalls, b.stats.solveCalls) << what;
  EXPECT_EQ(a.stats.solveSat, b.stats.solveSat) << what;
  EXPECT_EQ(a.stats.solveUnsat, b.stats.solveUnsat) << what;
  EXPECT_EQ(a.stats.solveUnknown, b.stats.solveUnknown) << what;
  EXPECT_EQ(a.stats.stepsExecuted, b.stats.stepsExecuted) << what;
  EXPECT_EQ(a.stats.treeNodes, b.stats.treeNodes) << what;
  EXPECT_EQ(a.stats.randomSequences, b.stats.randomSequences) << what;
}

gen::GenResult runLatch(int batch, int jobs) {
  const auto cm = compile::compile(makeLatchModel());
  gen::GenOptions opt;
  // Budgets generous enough that runs stop on full coverage, never on
  // the wall clock — the determinism contract assumes non-binding
  // budgets. Branch goals only: see test_parallel_gen.cpp.
  opt.budgetMillis = 30000;
  opt.seed = 77;
  opt.solver.timeBudgetMillis = 1000;
  opt.includeConditionGoals = false;
  opt.batch = batch;
  opt.jobs = jobs;
  gen::StcgGenerator g;
  return g.generate(cm, opt);
}

gen::GenResult runAnd2(int batch, int jobs, solver::SolverKind solverKind) {
  const auto cm = compile::compile(makeAnd2Model());
  gen::GenOptions opt;
  opt.budgetMillis = 30000;
  opt.seed = 9;
  opt.solver.timeBudgetMillis = 1000;
  opt.solverKind = solverKind;
  opt.batch = batch;
  opt.jobs = jobs;
  gen::StcgGenerator g;
  return g.generate(cm, opt);
}

TEST(StcgBatch, LatchSuiteIdenticalAcrossBatchAndJobs) {
  const auto base = runLatch(/*batch=*/1, /*jobs=*/1);
  EXPECT_EQ(base.coverage.decision, 1.0)
      << "latch must reach full coverage for the comparison to be stable";
  expectIdenticalGen(base, runLatch(8, 1), "batch=8 jobs=1");
  expectIdenticalGen(base, runLatch(1, 4), "batch=1 jobs=4");
  expectIdenticalGen(base, runLatch(8, 4), "batch=8 jobs=4");
}

TEST(StcgBatch, FullGoalSetIdenticalAcrossBatchAndJobs) {
  const auto base = runAnd2(1, 1, solver::SolverKind::kBox);
  EXPECT_EQ(base.coverage.decision, 1.0);
  EXPECT_EQ(base.coverage.mcdc, 1.0)
      << "every and2 goal is satisfiable; the run must stop on coverage";
  expectIdenticalGen(base, runAnd2(8, 1, solver::SolverKind::kBox),
                     "and2 batch=8 jobs=1");
  expectIdenticalGen(base, runAnd2(8, 4, solver::SolverKind::kBox),
                     "and2 batch=8 jobs=4");
}

TEST(StcgBatch, LocalSearchSolverRunsBatchIndependent) {
  // End-to-end through the batched neighbor scorer: the generator plumbs
  // opt.batch into SolveOptions::batch, so the local-search engine itself
  // scores candidate moves in lanes when batch > 1.
  const auto base = runAnd2(1, 1, solver::SolverKind::kLocalSearch);
  expectIdenticalGen(base, runAnd2(8, 1, solver::SolverKind::kLocalSearch),
                     "and2 local batch=8");
}

TEST(StcgBatch, BatchDefaultsOnAndReplayParamDefaultsScalar) {
  const gen::GenOptions opt;
  EXPECT_EQ(opt.batch, 8) << "batched lockstep execution is the default";
  EXPECT_EQ(opt.solver.batch, 1)
      << "solver batching is opt-in; the generator plumbs its own width";
}

}  // namespace
}  // namespace stcg
