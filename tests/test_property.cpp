// Property sweeps over the benchmark models: the invariants that tie the
// compiler, simulator, and solver together.
//
//  P1 Partial-evaluation consistency — evaluating an expression under a
//     full environment equals evaluating its state-substituted residual
//     under the inputs alone. This is the semantic core of state-aware
//     solving (paper §III-A).
//  P2 Path-constraint fidelity — a branch is recorded as executed in a
//     step exactly when its compiled path constraint holds in that step's
//     (state, input) environment.
//  P3 Solve-then-execute — when the solver reports SAT for a branch's
//     state-folded residual, executing the model from that state with the
//     model's solution does cover that branch (Algorithm 1 feeding
//     Algorithm 2 is sound end to end).
#include <gtest/gtest.h>

#include "benchmodels/benchmodels.h"
#include "compile/compiler.h"
#include "expr/builder.h"
#include "expr/subst.h"
#include "sim/simulator.h"
#include "solver/solver.h"
#include "util/rng.h"

namespace stcg {
namespace {

using expr::Env;
using expr::Scalar;

Env stateEnvOf(const compile::CompiledModel& cm,
               const sim::StateSnapshot& snap) {
  Env env;
  for (std::size_t i = 0; i < cm.states.size(); ++i) {
    const auto& sv = cm.states[i];
    if (sv.width == 1) {
      env.set(sv.id, snap[i].scalar());
    } else {
      env.setArray(sv.id, snap[i].elems());
    }
  }
  return env;
}

Env fullEnvOf(const compile::CompiledModel& cm, const sim::StateSnapshot& snap,
              const sim::InputVector& in) {
  Env env = stateEnvOf(cm, snap);
  for (std::size_t i = 0; i < cm.inputs.size(); ++i) {
    env.set(cm.inputs[i].info.id, in[i]);
  }
  return env;
}

struct SweepParam {
  std::string modelName;
  int seed;
};

class ModelPropertySweep
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(ModelPropertySweep, P1_PartialEvalConsistency) {
  const auto [name, seed] = GetParam();
  const auto cm = compile::compile(bench::buildBenchModel(name));
  sim::Simulator sim(cm);
  Rng rng(static_cast<std::uint64_t>(seed) * 31 + 7);

  for (int step = 0; step < 25; ++step) {
    const auto snap = sim.snapshot();
    const auto input = sim::randomInput(cm, rng);
    const Env full = fullEnvOf(cm, snap, input);
    const Env stateOnly = stateEnvOf(cm, snap);
    Env inputOnly;
    for (std::size_t i = 0; i < cm.inputs.size(); ++i) {
      inputOnly.set(cm.inputs[i].info.id, input[i]);
    }
    // Check on every branch path constraint plus every scalar state next.
    for (const auto& br : cm.branches) {
      const auto direct = expr::evaluate(br.pathConstraint, full);
      const auto residual = expr::substitute(br.pathConstraint, stateOnly);
      const auto viaResidual = expr::evaluate(residual, inputOnly);
      ASSERT_EQ(direct.toBool(), viaResidual.toBool())
          << name << " branch " << br.id << " at step " << step;
    }
    for (const auto& sv : cm.states) {
      if (sv.width != 1) continue;
      const auto direct = expr::evaluate(sv.next, full);
      const auto residual = expr::substitute(sv.next, stateOnly);
      const auto viaResidual = expr::evaluate(residual, inputOnly);
      ASSERT_EQ(direct.castTo(sv.type), viaResidual.castTo(sv.type))
          << name << " state " << sv.name;
    }
    (void)sim.step(input, nullptr);
  }
}

TEST_P(ModelPropertySweep, P2_PathConstraintMatchesExecution) {
  const auto [name, seed] = GetParam();
  const auto cm = compile::compile(bench::buildBenchModel(name));
  sim::Simulator sim(cm);
  Rng rng(static_cast<std::uint64_t>(seed) * 131 + 11);

  for (int step = 0; step < 25; ++step) {
    const auto snap = sim.snapshot();
    const auto input = sim::randomInput(cm, rng);
    const Env full = fullEnvOf(cm, snap, input);

    // Fresh tracker: exactly the branches executed this step are recorded.
    coverage::CoverageTracker cov(cm);
    (void)sim.step(input, &cov);

    for (const auto& br : cm.branches) {
      const bool pcHolds = expr::evaluate(br.pathConstraint, full).toBool();
      ASSERT_EQ(cov.branchCovered(br.id), pcHolds)
          << name << " branch " << br.id << " ("
          << cm.decisions[static_cast<std::size_t>(br.decision)].name << ":"
          << br.label << ") at step " << step;
    }
  }
}

TEST_P(ModelPropertySweep, P3_SolveThenExecuteCoversTheBranch) {
  const auto [name, seed] = GetParam();
  const auto cm = compile::compile(bench::buildBenchModel(name));
  sim::Simulator sim(cm);
  Rng rng(static_cast<std::uint64_t>(seed) * 733 + 5);

  // Random walk to scatter over the state space; at each visited state
  // scan branches from a random starting offset until one is solvable,
  // then verify the solver's model by execution.
  int solvedChecks = 0;
  for (int step = 0; step < 10; ++step) {
    const auto snap = sim.snapshot();
    const auto stateEnv = stateEnvOf(cm, snap);
    const std::size_t start = rng.index(cm.branches.size());
    for (std::size_t k = 0; k < cm.branches.size(); ++k) {
      const auto& br = cm.branches[(start + k) % cm.branches.size()];
      const auto residual = expr::substitute(br.pathConstraint, stateEnv);
      solver::SolveOptions so;
      so.timeBudgetMillis = 40;
      so.seed = rng.uniformInt(1, 1 << 30);
      solver::BoxSolver solver(so);
      const auto res = solver.solve(residual, cm.inputInfos());
      if (res.status != solver::SolveStatus::kSat) continue;
      sim::InputVector in;
      for (const auto& iv : cm.inputs) {
        in.push_back(res.model.get(iv.info.id).castTo(iv.info.type));
      }
      coverage::CoverageTracker cov(cm);
      sim::Simulator probe(cm);
      probe.restore(snap);
      (void)probe.step(in, &cov);
      ASSERT_TRUE(cov.branchCovered(br.id))
          << name << ": solver model failed to drive branch " << br.id;
      ++solvedChecks;
      break;
    }
    (void)sim.step(sim::randomInput(cm, rng), nullptr);
  }
  EXPECT_GT(solvedChecks, 0) << "sweep never exercised a SAT result";
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, ModelPropertySweep,
    ::testing::Combine(::testing::Values("CPUTask", "AFC", "TWC",
                                         "NICProtocol", "UTPC", "LANSwitch",
                                         "LEDLC", "TCP"),
                       ::testing::Values(1, 2, 3)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_s" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace stcg
