// P4 — invariant soundness sweep: every state value observed on any
// concrete random trajectory must lie inside the computed interval state
// invariant. This is the property the dead-branch proofs rest on.
#include <gtest/gtest.h>

#include "analysis/reachability.h"
#include "benchmodels/benchmodels.h"
#include "compile/compiler.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace stcg::analysis {
namespace {

class InvariantSoundness
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(InvariantSoundness, TrajectoriesStayInsideInvariant) {
  const auto [name, seed] = GetParam();
  const auto cm = compile::compile(bench::buildBenchModel(name));
  const auto inv = computeStateInvariant(cm);
  sim::Simulator sim(cm);
  Rng rng(static_cast<std::uint64_t>(seed) * 97 + 13);

  for (int step = 0; step < 300; ++step) {
    (void)sim.step(sim::randomInput(cm, rng), nullptr);
    const auto& snap = sim.state();
    for (std::size_t i = 0; i < cm.states.size(); ++i) {
      const auto& sv = cm.states[i];
      if (sv.width == 1) {
        const double v = snap[i].scalar().toReal();
        ASSERT_TRUE(inv.env.get(sv.id).contains(v))
            << name << " state " << sv.name << " value " << v
            << " escaped invariant " << inv.env.get(sv.id).toString()
            << " at step " << step;
      } else {
        const auto& dom = inv.env.getArray(sv.id);
        for (int j = 0; j < sv.width; ++j) {
          const double v = snap[i].at(j).toReal();
          ASSERT_TRUE(dom[static_cast<std::size_t>(j)].contains(v))
              << name << " state " << sv.name << "[" << j << "] value " << v
              << " escaped "
              << dom[static_cast<std::size_t>(j)].toString();
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, InvariantSoundness,
    ::testing::Combine(::testing::Values("CPUTask", "AFC", "TWC",
                                         "NICProtocol", "UTPC", "LANSwitch",
                                         "LEDLC", "TCP"),
                       ::testing::Values(1, 2)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_s" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace stcg::analysis
