// Unit and property tests for the branch-and-prune box solver.
#include <gtest/gtest.h>

#include <array>

#include "expr/builder.h"
#include "expr/eval.h"
#include "solver/solver.h"
#include "util/rng.h"

namespace stcg::solver {
namespace {

using expr::cBool;
using expr::cInt;
using expr::cReal;
using expr::ExprPtr;
using expr::mkVar;
using expr::Scalar;
using expr::Type;
using expr::VarInfo;

const VarInfo kX{0, "x", Type::kInt, -1000, 1000};
const VarInfo kY{1, "y", Type::kInt, -1000, 1000};
const VarInfo kR{2, "r", Type::kReal, -10.0, 10.0};
const VarInfo kB{3, "b", Type::kBool, 0, 1};

SolveResult solveOne(const ExprPtr& goal, std::vector<VarInfo> vars,
                     std::int64_t budgetMs = 500) {
  SolveOptions opt;
  opt.timeBudgetMillis = budgetMs;
  opt.seed = 99;
  BoxSolver s(opt);
  return s.solve(goal, vars);
}

TEST(Solver, TrivialTrueAssignsAllVariables) {
  const auto res = solveOne(cBool(true), {kX, kR, kB});
  ASSERT_EQ(res.status, SolveStatus::kSat);
  EXPECT_TRUE(res.model.has(0));
  EXPECT_TRUE(res.model.has(2));
  EXPECT_TRUE(res.model.has(3));
}

TEST(Solver, TrivialFalseIsUnsat) {
  EXPECT_EQ(solveOne(cBool(false), {kX}).status, SolveStatus::kUnsat);
}

TEST(Solver, WideIntegerEqualitySolvesInstantly) {
  // The STCG workhorse: id == 123456 over a 2-million-wide domain.
  const VarInfo wide{0, "id", Type::kInt, 0, 2000000};
  const auto goal = expr::eqE(mkVar(wide), cInt(123456));
  const auto res = solveOne(goal, {wide}, 50);
  ASSERT_EQ(res.status, SolveStatus::kSat);
  EXPECT_EQ(res.model.get(0), Scalar::i(123456));
  EXPECT_LE(res.stats.boxesProcessed, 3);
}

TEST(Solver, ConjunctionOfBoundsIsUnsatWhenEmpty) {
  const auto x = mkVar(kX);
  const auto res = solveOne(
      expr::andE(expr::gtE(x, cInt(5)), expr::ltE(x, cInt(5))), {kX});
  EXPECT_EQ(res.status, SolveStatus::kUnsat);
}

TEST(Solver, DisjunctionPicksAFeasibleArm) {
  const auto x = mkVar(kX);
  const auto goal = expr::orE(expr::eqE(x, cInt(-777)),
                              expr::eqE(x, cInt(2000)));  // 2000 out? no: in
  const auto res = solveOne(goal, {kX});
  ASSERT_EQ(res.status, SolveStatus::kSat);
  const auto v = res.model.get(0).asInt();
  EXPECT_TRUE(v == -777 || v == 2000);
}

TEST(Solver, MixedTypesWithBoolean) {
  // b && r > 2.5 && x == 7
  const auto goal = expr::andE(
      expr::andE(expr::castE(mkVar(kB), Type::kBool),
                 expr::gtE(mkVar(kR), cReal(2.5))),
      expr::eqE(mkVar(kX), cInt(7)));
  const auto res = solveOne(goal, {kX, kR, kB});
  ASSERT_EQ(res.status, SolveStatus::kSat);
  EXPECT_TRUE(res.model.get(3).asBool());
  EXPECT_GT(res.model.get(2).asReal(), 2.5);
  EXPECT_EQ(res.model.get(0).asInt(), 7);
}

TEST(Solver, NonlinearProductConstraint) {
  // x * x == 49 with x in [-1000, 1000].
  const auto x = mkVar(kX);
  const auto res = solveOne(expr::eqE(expr::mulE(x, x), cInt(49)), {kX});
  ASSERT_EQ(res.status, SolveStatus::kSat);
  const auto v = res.model.get(0).asInt();
  EXPECT_TRUE(v == 7 || v == -7);
}

TEST(Solver, SelectOverConstantArray) {
  // a[i] == 30 where a = [10, 20, 30, 40] -> i == 2.
  const auto arr = expr::cArray(
      Type::kInt,
      {Scalar::i(10), Scalar::i(20), Scalar::i(30), Scalar::i(40)});
  const VarInfo idx{0, "i", Type::kInt, 0, 3};
  const auto goal = expr::eqE(expr::selectE(arr, mkVar(idx)), cInt(30));
  const auto res = solveOne(goal, {idx});
  ASSERT_EQ(res.status, SolveStatus::kSat);
  EXPECT_EQ(res.model.get(0), Scalar::i(2));
}

TEST(Solver, SymbolicStoreThenSelect) {
  // store(a, i, v); a'[2] == 99 with a[2] == 30 initially: either i==2 and
  // v==99, or contradiction — the solver must find i=2, v=99.
  const auto arr = expr::cArray(
      Type::kInt,
      {Scalar::i(10), Scalar::i(20), Scalar::i(30), Scalar::i(40)});
  const VarInfo idx{0, "i", Type::kInt, 0, 3};
  const VarInfo val{1, "v", Type::kInt, 0, 100};
  const auto stored = expr::storeE(arr, mkVar(idx), mkVar(val));
  const auto goal = expr::eqE(expr::selectE(stored, cInt(2)), cInt(99));
  const auto res = solveOne(goal, {idx, val});
  ASSERT_EQ(res.status, SolveStatus::kSat);
  EXPECT_EQ(res.model.get(0), Scalar::i(2));
  EXPECT_EQ(res.model.get(1), Scalar::i(99));
}

TEST(Solver, GuardedDivisionTarget) {
  // 100 / x == 25 -> x == 4 (division guarded, x != 0 implied by value).
  const auto x = mkVar(kX);
  const auto res =
      solveOne(expr::eqE(expr::divE(cInt(100), x), cInt(25)), {kX});
  ASSERT_EQ(res.status, SolveStatus::kSat);
  EXPECT_EQ(res.model.get(0), Scalar::i(4));
}

TEST(Solver, BudgetExhaustionReportsUnknown) {
  // A needle that interval reasoning cannot prune: sum of products equal
  // to a specific awkward value, under an absurdly small budget.
  const auto x = mkVar(kX);
  const auto y = mkVar(kY);
  const auto goal =
      expr::eqE(expr::addE(expr::mulE(x, x), expr::mulE(y, y)), cInt(999983));
  SolveOptions opt;
  opt.timeBudgetMillis = 1;
  opt.maxBoxes = 4;
  opt.samplesPerBox = 1;
  BoxSolver s(opt);
  const auto res = s.solve(goal, {kX, kY});
  EXPECT_NE(res.status, SolveStatus::kSat);  // kUnsat impossible that fast
}

TEST(Solver, ModelsAreAlwaysCertified) {
  // Every SAT answer must actually evaluate to true — checked across a
  // batch of random linear/relational goals.
  Rng rng(2024);
  for (int trial = 0; trial < 50; ++trial) {
    const auto x = mkVar(kX);
    const auto y = mkVar(kY);
    const auto a = cInt(rng.uniformInt(-5, 5));
    const auto b = cInt(rng.uniformInt(-5, 5));
    const auto t = cInt(rng.uniformInt(-100, 100));
    const auto goal = expr::leE(
        expr::addE(expr::mulE(a, x), expr::mulE(b, y)), t);
    const auto res = solveOne(goal, {kX, kY}, 100);
    if (res.status != SolveStatus::kSat) continue;
    EXPECT_TRUE(expr::evaluate(goal, res.model).toBool())
        << goal->toString();
  }
}

// Exhaustive cross-check on small domains: the solver's SAT/UNSAT verdicts
// must agree with brute force.
class SolverExhaustiveSweep : public ::testing::TestWithParam<int> {};

TEST_P(SolverExhaustiveSweep, AgreesWithBruteForce) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7907 + 3);
  const VarInfo a{0, "a", Type::kInt, -4, 4};
  const VarInfo b{1, "b", Type::kInt, -4, 4};
  const auto va = mkVar(a), vb = mkVar(b);

  // Random goal from a small grammar.
  const auto num = [&]() {
    switch (rng.index(4)) {
      case 0: return va;
      case 1: return vb;
      case 2: return expr::addE(va, vb);
      default: return expr::mulE(va, vb);
    }
  };
  const auto relOf = [&](ExprPtr l, ExprPtr r) {
    switch (rng.index(3)) {
      case 0: return expr::eqE(l, r);
      case 1: return expr::ltE(l, r);
      default: return expr::geE(l, r);
    }
  };
  const auto goal = expr::andE(relOf(num(), cInt(rng.uniformInt(-6, 6))),
                               relOf(num(), cInt(rng.uniformInt(-6, 6))));

  bool bruteSat = false;
  for (std::int64_t i = -4; i <= 4 && !bruteSat; ++i) {
    for (std::int64_t j = -4; j <= 4 && !bruteSat; ++j) {
      expr::Env env;
      env.set(0, Scalar::i(i));
      env.set(1, Scalar::i(j));
      bruteSat = expr::evaluate(goal, env).toBool();
    }
  }
  const auto res = solveOne(goal, {a, b}, 2000);
  if (bruteSat) {
    ASSERT_EQ(res.status, SolveStatus::kSat) << goal->toString();
    EXPECT_TRUE(expr::evaluate(goal, res.model).toBool());
  } else {
    EXPECT_EQ(res.status, SolveStatus::kUnsat) << goal->toString();
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGoals, SolverExhaustiveSweep,
                         ::testing::Range(0, 40));

TEST(Solver, StatusNames) {
  EXPECT_STREQ(solveStatusName(SolveStatus::kSat), "SAT");
  EXPECT_STREQ(solveStatusName(SolveStatus::kUnsat), "UNSAT");
  EXPECT_STREQ(solveStatusName(SolveStatus::kUnknown), "UNKNOWN");
}

}  // namespace
}  // namespace stcg::solver
