// Benchmark model suite checks: every Table-II model validates, compiles,
// simulates deterministically, and exposes a sensible coverage structure.
#include <gtest/gtest.h>

#include "benchmodels/benchmodels.h"
#include "compile/compiler.h"
#include "sim/simulator.h"
#include "stcg/stcg_generator.h"
#include "util/rng.h"

namespace stcg {
namespace {

class BenchModelTest : public ::testing::TestWithParam<std::string> {};

TEST_P(BenchModelTest, ValidatesAndCompiles) {
  auto m = bench::buildBenchModel(GetParam());
  const auto problems = m.validate();
  EXPECT_TRUE(problems.empty())
      << (problems.empty() ? "" : problems.front());
  const auto cm = compile::compile(m);
  EXPECT_FALSE(cm.inputs.empty());
  EXPECT_FALSE(cm.states.empty()) << "all benchmark models are stateful";
  EXPECT_FALSE(cm.outputs.empty());
  EXPECT_GE(static_cast<int>(cm.branches.size()), 20)
      << "Table-II models are branch-rich";
  EXPECT_GT(cm.conditionCount(), 0);
}

TEST_P(BenchModelTest, SimulatesRandomInputsWithoutSurprises) {
  const auto cm = compile::compile(bench::buildBenchModel(GetParam()));
  sim::Simulator s(cm);
  coverage::CoverageTracker cov(cm);
  Rng rng(42);
  for (int i = 0; i < 200; ++i) {
    (void)s.step(sim::randomInput(cm, rng), &cov);
  }
  // Random exercise must reach some but not necessarily all branches.
  EXPECT_GT(cov.coveredBranchCount(), 0);
}

TEST_P(BenchModelTest, SimulationIsDeterministic) {
  const auto cm = compile::compile(bench::buildBenchModel(GetParam()));
  sim::Simulator a(cm), b(cm);
  Rng rng(7);
  std::vector<sim::InputVector> script;
  for (int i = 0; i < 50; ++i) script.push_back(sim::randomInput(cm, rng));
  for (const auto& in : script) (void)a.step(in, nullptr);
  for (const auto& in : script) (void)b.step(in, nullptr);
  EXPECT_EQ(a.snapshot(), b.snapshot());
  EXPECT_EQ(a.lastOutputs(), b.lastOutputs());
}

TEST_P(BenchModelTest, SnapshotRestoreReproducesTrajectory) {
  const auto cm = compile::compile(bench::buildBenchModel(GetParam()));
  sim::Simulator s(cm);
  Rng rng(99);
  for (int i = 0; i < 20; ++i) (void)s.step(sim::randomInput(cm, rng), nullptr);
  const auto snap = s.snapshot();
  const auto probe = sim::randomInput(cm, rng);
  (void)s.step(probe, nullptr);
  const auto after = s.snapshot();
  s.restore(snap);
  (void)s.step(probe, nullptr);
  EXPECT_EQ(s.snapshot(), after);
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, BenchModelTest,
    ::testing::Values("CPUTask", "AFC", "TWC", "NICProtocol", "UTPC",
                      "LANSwitch", "LEDLC", "TCP"),
    [](const auto& info) { return info.param; });

TEST(BenchRegistry, HasAllEightPaperModels) {
  const auto& all = bench::allBenchModels();
  ASSERT_EQ(all.size(), 8u);
  EXPECT_EQ(all.front().name, "CPUTask");
  EXPECT_EQ(all.back().name, "TCP");
  for (const auto& info : all) {
    EXPECT_GT(info.paperBranches, 0);
    EXPECT_GT(info.paperBlocks, 0);
    EXPECT_FALSE(info.functionality.empty());
  }
}

TEST(BenchRegistry, UnknownNameThrows) {
  EXPECT_THROW((void)bench::buildBenchModel("NoSuchModel"),
               std::out_of_range);
}

TEST(CpuTaskSimplified, HasThirteenBranchesLikeFig3) {
  const auto cm = compile::compile(bench::buildCpuTaskSimplified());
  // Fig. 3 counts 13 behavioural branches: 5 opcode arms + 4 ops × 2
  // outcomes. Our compiled form adds the slot-scan switch decisions, so
  // the top-level structure must contain at least those 13.
  int regionArms = 0;
  for (const auto& d : cm.decisions) {
    if (d.kind == compile::DecisionKind::kRegionGroup) {
      regionArms += static_cast<int>(d.armConds.size());
    }
  }
  EXPECT_EQ(regionArms, 13);
}

TEST(CpuTaskSimplified, AddThenDeleteSucceeds) {
  const auto cm = compile::compile(bench::buildCpuTaskSimplified());
  sim::Simulator s(cm);
  using expr::Scalar;
  // op=0 (add id 5), then op=1 (delete id 5): both succeed.
  (void)s.step({Scalar::i(0), Scalar::i(5), Scalar::i(0)}, nullptr);
  EXPECT_EQ(s.lastOutputs()[0].asInt(), 1);  // add ok
  EXPECT_EQ(s.lastOutputs()[1].asInt(), 0);  // count read pre-step
  (void)s.step({Scalar::i(1), Scalar::i(5), Scalar::i(0)}, nullptr);
  EXPECT_EQ(s.lastOutputs()[0].asInt(), 1);  // delete ok
  (void)s.step({Scalar::i(1), Scalar::i(5), Scalar::i(0)}, nullptr);
  EXPECT_EQ(s.lastOutputs()[0].asInt(), 0);  // second delete fails
}

TEST(CpuTaskSimplified, DeleteWithoutAddFails) {
  const auto cm = compile::compile(bench::buildCpuTaskSimplified());
  sim::Simulator s(cm);
  using expr::Scalar;
  (void)s.step({Scalar::i(1), Scalar::i(5), Scalar::i(0)}, nullptr);
  EXPECT_EQ(s.lastOutputs()[0].asInt(), 0);
}

}  // namespace
}  // namespace stcg
