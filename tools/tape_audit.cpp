// Standalone tape-audit gate for tools/check.sh: sweeps every tape the
// engines would execute and exits non-zero on any verifier error or any
// raw-vs-optimized differential mismatch. Runs in three stages:
//
//   1. bench models:  sim / interval / distance tapes of all eight bench
//      models verify clean, raw and pass-pipeline output alike.
//   2. random models: a corpus of randomly wired block models (delays for
//      state, switches for branches) goes through the same sweep, so the
//      verifier sees shapes no hand-written model exercises.
//   3. random DAGs:   fuzz_dag expression corpora execute raw vs optimized
//      tapes side by side — full run plus incremental cone replay — and
//      every root is compared bitwise.
//
// check.sh runs the full sweep inside the ASan/UBSan build and the
// `--quick` gate inside the Release bench build.
//
// Usage: tape_audit [--quick] [--models N] [--fuzz N] [--seed S]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/interval_tape.h"
#include "benchmodels/benchmodels.h"
#include "compile/compiler.h"
#include "compile/model_tape.h"
#include "expr/builder.h"
#include "expr/eval.h"
#include "expr/tape.h"
#include "expr/tape_passes.h"
#include "expr/tape_verify.h"
#include "model/model.h"
#include "solver/distance_tape.h"
#include "util/rng.h"

#include "fuzz_dag.h"

namespace stcg {
namespace {

using expr::ExprPtr;
using expr::Scalar;
using expr::Type;
using model::Model;
using model::PortRef;

int failures = 0;

void fail(const std::string& msg) {
  std::fprintf(stderr, "FAIL: %s\n", msg.c_str());
  ++failures;
}

bool verifyClean(const expr::Tape& t, const std::string& what) {
  const expr::TapeVerifyResult res = expr::verifyTape(t);
  if (!res.hasErrors()) return true;
  fail(what + " failed verification:\n" + res.render());
  return false;
}

// ----- stages 1 and 2: whole-model sweep ------------------------------------

struct SweepStats {
  int models = 0;
  int shrank = 0;
  int distanceTapes = 0;
};

/// Verify every tape this compiled model can hand an engine: the
/// simulation ModelTape, the interval tape over the next-state roots, and
/// one distance tape per branch path constraint (the distance build is
/// replicated from the DistanceTape constructor so the raw/optimized pair
/// is verified explicitly even in Release, where the producers' own
/// maybeRequireVerifiedTape is off).
void auditCompiledModel(const compile::CompiledModel& cm,
                        const std::string& name, SweepStats& stats) {
  try {
    const compile::ModelTape mt = compile::buildModelTape(cm);
    verifyClean(*mt.rawTape, name + " sim (raw)");
    verifyClean(*mt.tape, name + " sim");
    ++stats.models;
    if (mt.passStats.shrank()) ++stats.shrank;

    if (!cm.states.empty()) {
      std::vector<ExprPtr> nextRoots;
      nextRoots.reserve(cm.states.size());
      for (const auto& sv : cm.states) nextRoots.push_back(sv.next);
      const analysis::IntervalTapeBuild built =
          analysis::buildIntervalTape(nextRoots);
      verifyClean(*built.rawTape, name + " interval (raw)");
      verifyClean(*built.tape, name + " interval");
    }

    for (const auto& br : cm.branches) {
      try {
        expr::TapeBuilder b;
        const solver::DistanceProgram prog =
            solver::buildDistanceProgram(br.pathConstraint, b);
        const std::shared_ptr<const expr::Tape> raw = b.finish();
        verifyClean(*raw, name + " distance:" + br.label + " (raw)");
        std::vector<expr::SlotRef> extraLive;
        for (const auto& in : prog.code) {
          if (in.va >= 0) extraLive.push_back({in.va, false});
          if (in.vb >= 0) extraLive.push_back({in.vb, false});
        }
        const expr::OptimizedTape opt = expr::optimizeTape(raw, extraLive);
        verifyClean(*opt.tape, name + " distance:" + br.label);
        ++stats.distanceTapes;
      } catch (const expr::EvalError&) {
        // Non-boolean / array goal: the solver would not compile it either.
      }
    }
  } catch (const expr::EvalError& e) {
    fail(name + ": tape construction failed: " + std::string(e.what()));
  }
}

/// A randomly wired block model: real-typed dataflow grown from a few
/// inports, unit delays for state (inputs saturated so the interval
/// fixpoint stays bounded), switches for branch structure, and a
/// compare-to-const test objective when one is available.
Model randomModel(Rng& rng, int idx) {
  Model m("fuzzmodel" + std::to_string(idx));
  std::vector<PortRef> reals, bools;
  int id = 0;
  const auto nm = [&](const char* base) {
    return std::string(base) + std::to_string(id++);
  };
  const auto pick = [&](const std::vector<PortRef>& p) {
    return p[rng.index(p.size())];
  };

  const int nIn = rng.uniformInt(2, 4);
  for (int i = 0; i < nIn; ++i) {
    reals.push_back(m.addInport(nm("in"), Type::kReal, -50, 50));
  }
  std::vector<PortRef> delays;
  const int nDelay = rng.uniformInt(1, 2);
  for (int i = 0; i < nDelay; ++i) {
    delays.push_back(m.addUnitDelayHole(nm("d"), Scalar::r(0.0)));
    reals.push_back(delays.back());
  }

  const int kGrow = rng.uniformInt(12, 28);
  for (int it = 0; it < kGrow; ++it) {
    switch (rng.index(bools.empty() ? 6 : 7)) {
      case 0:
        reals.push_back(m.addSum(nm("s"), {pick(reals), pick(reals)},
                                 rng.chance(0.5) ? "++" : "+-"));
        break;
      case 1:
        reals.push_back(
            m.addGain(nm("g"), pick(reals), rng.uniformReal(-3.0, 3.0)));
        break;
      case 2:
        reals.push_back(m.addMinMax(
            nm("m"),
            rng.chance(0.5) ? model::MinMaxOp::kMin : model::MinMaxOp::kMax,
            pick(reals), pick(reals)));
        break;
      case 3:
        reals.push_back(m.addSaturation(nm("sat"), pick(reals), -100, 100));
        break;
      case 4:
        bools.push_back(m.addCompareToConst(
            nm("c"), pick(reals), static_cast<model::RelOp>(rng.index(6)),
            rng.uniformReal(-20.0, 20.0)));
        break;
      case 5:
        reals.push_back(m.addSwitch(nm("sw"), pick(reals), pick(reals),
                                    pick(reals),
                                    model::SwitchCriteria::kGreaterThan,
                                    rng.uniformReal(-10.0, 10.0)));
        break;
      default:
        reals.push_back(m.addAbs(nm("a"), pick(reals)));
        break;
    }
  }
  for (const PortRef& d : delays) {
    m.bindDelayInput(d, m.addSaturation(nm("dsat"), pick(reals), -100, 100));
  }
  m.addOutport("y", pick(reals));
  if (!bools.empty()) m.addTestObjective("obj", pick(bools));
  return m;
}

// ----- stage 3: random-DAG differential --------------------------------------

void fuzzDagTrial(Rng& rng, int trial) {
  fuzz::FuzzDag d = fuzz::makeFuzzDag(rng, /*withArrays=*/true);
  std::vector<ExprPtr> roots;
  const auto addRootFrom = [&](const std::vector<ExprPtr>& pool) {
    roots.push_back(pool[rng.index(pool.size())]);
  };
  for (int i = 0; i < 3; ++i) addRootFrom(d.bools);
  for (int i = 0; i < 2; ++i) {
    addRootFrom(d.ints);
    addRootFrom(d.reals);
  }
  addRootFrom(d.realArrays);
  addRootFrom(d.intArrays);

  const std::string where = "dag trial " + std::to_string(trial);
  const fuzz::TapePair p = fuzz::buildTapePair(roots);
  verifyClean(*p.raw, where + " (raw)");
  verifyClean(*p.optimized, where + " (optimized)");

  expr::TapeExecutor raw(p.raw), opt(p.optimized);
  const expr::Env env = fuzz::randomEnv(rng, d);
  raw.bindEnv(env);
  raw.run();
  opt.bindEnv(env);
  opt.run();

  const auto checkAll = [&](const char* what) {
    for (std::size_t i = 0; i < roots.size(); ++i) {
      const std::string at = where + " " + what + " root " +
                             std::to_string(i);
      if (roots[i]->isArray()) {
        const auto& a = raw.array(p.rawSlots[i]);
        const auto& b = opt.array(p.optSlots[i]);
        if (a.size() != b.size()) {
          fail(at + ": array width mismatch");
          continue;
        }
        for (std::size_t j = 0; j < a.size(); ++j) {
          if (!fuzz::sameScalar(a[j], b[j])) {
            fail(at + " [" + std::to_string(j) + "]: optimized != raw");
          }
        }
      } else if (!fuzz::sameScalar(raw.scalar(p.rawSlots[i]),
                                   opt.scalar(p.optSlots[i]))) {
        fail(at + ": optimized != raw");
      }
    }
  };
  checkAll("full");

  // Incremental cone replay must stay exact on the slot-shared tape.
  for (int mut = 0; mut < 4; ++mut) {
    const auto& v = d.vars[rng.index(d.vars.size())];
    const Scalar nv = fuzz::randomScalarFor(rng, v);
    raw.setVar(v.id, nv);
    raw.runCone(v.id);
    opt.setVar(v.id, nv);
    opt.runCone(v.id);
    checkAll("cone");
  }
}

int runAudit(int argc, char** argv) {
  int nModels = 20;
  int nFuzz = 60;
  std::uint64_t seed = 20260807;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--quick") {
      nModels = 6;
      nFuzz = 12;
    } else if (a == "--models" && i + 1 < argc) {
      nModels = std::atoi(argv[++i]);
    } else if (a == "--fuzz" && i + 1 < argc) {
      nFuzz = std::atoi(argv[++i]);
    } else if (a == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: tape_audit [--quick] [--models N] [--fuzz N] "
                   "[--seed S]\n");
      return 2;
    }
  }

  SweepStats bench;
  for (const auto& info : stcg::bench::allBenchModels()) {
    auditCompiledModel(compile::compile(stcg::bench::buildBenchModel(info.name)),
                       info.name, bench);
  }
  std::printf("bench models: %d audited, %d shrank, %d distance tapes\n",
              bench.models, bench.shrank, bench.distanceTapes);
  if (bench.shrank < 4) {
    fail("pass pipeline shrank only " + std::to_string(bench.shrank) +
         "/8 bench models (acceptance floor is 4)");
  }

  Rng rng(seed);
  SweepStats random;
  for (int i = 0; i < nModels; ++i) {
    auditCompiledModel(compile::compile(randomModel(rng, i)),
                       "random model " + std::to_string(i), random);
  }
  std::printf("random models: %d audited, %d shrank, %d distance tapes\n",
              random.models, random.shrank, random.distanceTapes);

  for (int t = 0; t < nFuzz; ++t) fuzzDagTrial(rng, t);
  std::printf("random DAGs: %d differential trials\n", nFuzz);

  if (failures > 0) {
    std::fprintf(stderr, "tape audit FAILED: %d finding(s)\n", failures);
    return 1;
  }
  std::printf("tape audit passed\n");
  return 0;
}

}  // namespace
}  // namespace stcg

int main(int argc, char** argv) { return stcg::runAudit(argc, argv); }
