#!/usr/bin/env bash
# Kill-and-resume fuzz for the checkpointable STCG campaign, driven
# through the public CLI:
#
#   1. SIGKILL fuzz — start a fixed-seed, round-capped campaign with
#      --checkpoint, SIGKILL it at a random point, resume, repeat until
#      a run completes; the exported suite must be byte-identical to an
#      uninterrupted reference run. Kills land anywhere, including
#      mid-save: the atomic tmp+rename write means the checkpoint on
#      disk is always either the previous complete one or the new
#      complete one, never a torn file.
#   2. Corrupt-checkpoint sweep — truncations, a flipped byte, trailing
#      junk and an empty file must each be *rejected* by --resume with a
#      typed "error:" diagnostic and a nonzero exit, never a crash
#      (exit >= 128 would mean the loader died on a signal).
#
# Usage: tools/resume_fuzz.sh <stcg_cli> [--iterations N] [--model M]
#                             [--rounds N] [--seed N]
set -euo pipefail

cli="${1:?usage: resume_fuzz.sh <stcg_cli> [--iterations N] [--model M] [--rounds N] [--seed N]}"
shift
iterations=5
model=AFC
rounds=500
seed=77
while [ $# -gt 0 ]; do
  case "$1" in
    --iterations) iterations="$2"; shift 2 ;;
    --model)      model="$2";      shift 2 ;;
    --rounds)     rounds="$2";     shift 2 ;;
    --seed)       seed="$2";       shift 2 ;;
    *) echo "error: unknown argument '$1'" >&2; exit 2 ;;
  esac
done

work="$(mktemp -d /tmp/stcg_resume_fuzz.XXXXXX)"
trap 'rm -rf "$work"' EXIT
ck="$work/campaign.ck"
ref="$work/ref.txt"
out="$work/out.txt"

# --budget is non-binding (the round cap is the stop condition), so the
# wall-clock rebasing on resume can never change the trajectory.
common=("$model" --budget 600000 --seed "$seed" --max-rounds "$rounds")

echo "-- reference run ($model, $rounds rounds, seed $seed) --"
t0=$(date +%s%N)
"$cli" "${common[@]}" --export "$ref" > /dev/null
ref_ms=$(( ($(date +%s%N) - t0) / 1000000 ))
# Kill delays are drawn from [0, 1.2 * reference duration] so they land
# mid-campaign regardless of build type or host speed; the tail past
# 1.0x covers the kill-after-final-save case.
max_delay_ms=$(( ref_ms * 6 / 5 ))
[ "$max_delay_ms" -lt 20 ] && max_delay_ms=20
echo "   reference took ${ref_ms}ms; kill window [0, ${max_delay_ms}ms]"

echo "-- SIGKILL + resume fuzz ($iterations iterations) --"
for it in $(seq 1 "$iterations"); do
  rm -f "$ck" "$out"
  attempts=0
  while :; do
    attempts=$((attempts + 1))
    # Progress bound, not a tight budget: with --checkpoint-every 1 any
    # attempt that survives one round past the last save advances the
    # campaign, so completion is certain; Release builds routinely eat
    # 30+ kills before finishing 500 rounds.
    if [ "$attempts" -gt 150 ]; then
      echo "FAIL: iteration $it never completed after 150 resume attempts" >&2
      exit 1
    fi
    # --resume is lenient in the CLI: first attempt (no checkpoint on
    # disk yet, or killed before the first save) starts fresh. The
    # subshell keeps bash's "Killed" job notices out of the log; some
    # attempts finish before the kill lands, which is also a case worth
    # covering (kill arriving after the final save).
    status=0
    (
      "$cli" "${common[@]}" --checkpoint "$ck" --resume --export "$out" \
        > /dev/null 2> "$work/err.txt" &
      pid=$!
      delay_ms=$((RANDOM % (max_delay_ms + 1)))
      sleep "$(awk -v ms="$delay_ms" 'BEGIN { printf "%.3f", ms / 1000 }')"
      kill -9 "$pid" 2> /dev/null || true
      wait "$pid"
    ) 2> /dev/null || status=$?
    if [ "$status" -eq 0 ]; then
      break
    elif [ "$status" -ne 137 ]; then
      echo "FAIL: iteration $it attempt $attempts exited $status (not 0 or SIGKILL):" >&2
      cat "$work/err.txt" >&2
      exit 1
    fi
  done
  if ! cmp -s "$ref" "$out"; then
    echo "FAIL: iteration $it ($attempts attempts): resumed suite differs from uninterrupted reference" >&2
    diff "$ref" "$out" | head -20 >&2
    exit 1
  fi
  echo "   iteration $it: suite identical after $attempts attempt(s)"
done

echo "-- corrupt/truncated checkpoint rejection sweep --"
rm -f "$ck"
"$cli" "${common[@]}" --checkpoint "$ck" > /dev/null
size=$(wc -c < "$ck")

# Each corruption is applied to a copy; --resume on it must exit
# nonzero (rejected with a typed diagnostic), never 0 (silently
# accepted) and never >= 128 (crashed on a signal).
expect_rejected() {
  local label="$1" bad="$2"
  local status=0
  "$cli" "${common[@]}" --checkpoint "$bad" --resume \
    > /dev/null 2> "$work/err.txt" || status=$?
  if [ "$status" -eq 0 ]; then
    echo "FAIL: $label checkpoint was accepted" >&2
    exit 1
  elif [ "$status" -ge 128 ]; then
    echo "FAIL: $label checkpoint crashed the loader (exit $status)" >&2
    exit 1
  elif ! grep -q "error:" "$work/err.txt"; then
    echo "FAIL: $label checkpoint rejected without an error: diagnostic" >&2
    cat "$work/err.txt" >&2
    exit 1
  fi
  echo "   $label: rejected ($(head -1 "$work/err.txt"))"
}

for frac_label in "truncated-half:$((size / 2))" \
                  "truncated-1:$((size - 1))" \
                  "truncated-40:$((size - 40))"; do
  label="${frac_label%%:*}"
  keep="${frac_label##*:}"
  head -c "$keep" "$ck" > "$work/bad.ck"
  expect_rejected "$label" "$work/bad.ck"
done

cp "$ck" "$work/bad.ck"
off=$((size / 2))
orig="$(dd if="$work/bad.ck" bs=1 skip="$off" count=1 2> /dev/null)"
repl=X
[ "$orig" = "X" ] && repl=Y
printf '%s' "$repl" | dd of="$work/bad.ck" bs=1 seek="$off" conv=notrunc 2> /dev/null
expect_rejected "byte-flipped" "$work/bad.ck"

cp "$ck" "$work/bad.ck"
printf 'trailing garbage\n' >> "$work/bad.ck"
expect_rejected "trailing-junk" "$work/bad.ck"

: > "$work/bad.ck"
expect_rejected "empty" "$work/bad.ck"

# A checkpoint from a different seed must be refused (options signature),
# not silently replayed under the wrong trajectory.
rm -f "$work/bad.ck"
"$cli" "$model" --budget 600000 --seed $((seed + 1)) --max-rounds "$rounds" \
  --checkpoint "$work/bad.ck" > /dev/null
expect_rejected "stale-options" "$work/bad.ck"

echo "-- resume fuzz passed --"
