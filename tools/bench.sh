#!/usr/bin/env bash
# Release-mode evaluation-engine benchmark: builds bench_eval_tape with
# full optimization and writes the measured tree-vs-tape table to
# BENCH_eval.json at the repo root (the numbers quoted in EXPERIMENTS.md).
#
# Usage: tools/bench.sh [build-dir] [-- extra bench_eval_tape args]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-"$repo_root/build-release"}"
shift || true
[ "${1:-}" = "--" ] && shift

echo "== configure (Release) =="
cmake -S "$repo_root" -B "$build_dir" -DCMAKE_BUILD_TYPE=Release \
  ${STCG_CHECK_GENERATOR:+-G "$STCG_CHECK_GENERATOR"}

echo "== build bench_eval_tape =="
cmake --build "$build_dir" -j "$(nproc)" --target bench_eval_tape

echo "== run =="
"$build_dir/bench/bench_eval_tape" --json "$repo_root/BENCH_eval.json" "$@"
