#!/usr/bin/env bash
# Release-mode evaluation-engine benchmarks: builds bench_eval_tape and
# bench_batch_eval with full optimization and writes the measured tables
# to BENCH_eval.json / BENCH_batch.json at the repo root (the numbers
# quoted in EXPERIMENTS.md).
#
# Usage: tools/bench.sh [build-dir] [--repeat N] [-- extra bench args]
#   --repeat N  measure every cell N times and report the median per row
#               (forwarded to both binaries; stabilizes the JSON numbers
#               against noisy-neighbor and frequency-scaling blips)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="$repo_root/build-release"
repeat_args=()
if [ $# -gt 0 ] && [ "$1" != "--" ] && [ "$1" != "--repeat" ]; then
  build_dir="$1"
  shift
fi
if [ "${1:-}" = "--repeat" ]; then
  if [ $# -lt 2 ]; then
    echo "error: --repeat requires a value" >&2
    exit 2
  fi
  repeat_args=(--repeat "$2")
  shift 2
fi
[ "${1:-}" = "--" ] && shift

echo "== configure (Release) =="
cmake -S "$repo_root" -B "$build_dir" -DCMAKE_BUILD_TYPE=Release \
  ${STCG_CHECK_GENERATOR:+-G "$STCG_CHECK_GENERATOR"}

echo "== build bench_eval_tape bench_batch_eval =="
cmake --build "$build_dir" -j "$(nproc)" \
  --target bench_eval_tape --target bench_batch_eval

# Run metadata pinned into both JSON files (CPU model and SIMD level are
# detected by the binaries themselves).
git_sha="$(git -C "$repo_root" rev-parse HEAD 2>/dev/null || echo unknown)"
stamp="$(date -u +%Y-%m-%dT%H:%M:%SZ)"

echo "== run bench_eval_tape =="
"$build_dir/bench/bench_eval_tape" --json "$repo_root/BENCH_eval.json" \
  --git "$git_sha" --timestamp "$stamp" ${repeat_args[@]+"${repeat_args[@]}"} "$@"

echo "== run bench_batch_eval =="
"$build_dir/bench/bench_batch_eval" --json "$repo_root/BENCH_batch.json" \
  --git "$git_sha" --timestamp "$stamp" ${repeat_args[@]+"${repeat_args[@]}"} "$@"
