#!/usr/bin/env bash
# Release-mode evaluation-engine benchmarks: builds bench_eval_tape and
# bench_batch_eval with full optimization and writes the measured tables
# to BENCH_eval.json / BENCH_batch.json at the repo root (the numbers
# quoted in EXPERIMENTS.md).
#
# Usage: tools/bench.sh [build-dir] [-- extra bench args]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-"$repo_root/build-release"}"
shift || true
[ "${1:-}" = "--" ] && shift

echo "== configure (Release) =="
cmake -S "$repo_root" -B "$build_dir" -DCMAKE_BUILD_TYPE=Release \
  ${STCG_CHECK_GENERATOR:+-G "$STCG_CHECK_GENERATOR"}

echo "== build bench_eval_tape bench_batch_eval =="
cmake --build "$build_dir" -j "$(nproc)" \
  --target bench_eval_tape --target bench_batch_eval

# Run metadata pinned into both JSON files (CPU model and SIMD level are
# detected by the binaries themselves).
git_sha="$(git -C "$repo_root" rev-parse HEAD 2>/dev/null || echo unknown)"
stamp="$(date -u +%Y-%m-%dT%H:%M:%SZ)"

echo "== run bench_eval_tape =="
"$build_dir/bench/bench_eval_tape" --json "$repo_root/BENCH_eval.json" \
  --git "$git_sha" --timestamp "$stamp" "$@"

echo "== run bench_batch_eval =="
"$build_dir/bench/bench_batch_eval" --json "$repo_root/BENCH_batch.json" \
  --git "$git_sha" --timestamp "$stamp" "$@"
