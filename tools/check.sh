#!/usr/bin/env bash
# CI-style gate: sanitizer + warnings-as-errors build, full test suite,
# a thread-sanitizer pass over the parallel solve loop (when the
# toolchain supports -fsanitize=thread), and (when installed) clang-tidy
# over src/.
#
# Usage: tools/check.sh [build-dir]
#
# Exits non-zero on the first failing stage. clang-tidy and TSAN are
# optional — containers without them skip those stages with a notice
# instead of failing.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-"$repo_root/build-check"}"

echo "== configure (STCG_SANITIZE=address,undefined STCG_WERROR=ON) =="
cmake -S "$repo_root" -B "$build_dir" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSTCG_SANITIZE=address,undefined \
  -DSTCG_WERROR=ON \
  -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
  ${STCG_CHECK_GENERATOR:+-G "$STCG_CHECK_GENERATOR"}

echo "== build =="
cmake --build "$build_dir" -j "$(nproc)"

echo "== test =="
ctest --test-dir "$build_dir" --output-on-failure

# Full tape-verifier sweep under ASan/UBSan: all eight bench models'
# sim/interval/distance tapes plus a random-model and random-DAG corpus,
# raw and pass-pipeline output both verified and differentially compared.
echo "== tape audit (full, sanitized) =="
cmake --build "$build_dir" -j "$(nproc)" --target tape_audit
"$build_dir/tools/tape_audit"

# TSAN is a separate build: it cannot share shadow memory with ASAN, and
# the race it exists to catch (the work-stealing pool's batch handover)
# only shows in the threaded tests, so only those run here.
tsan_probe="$(mktemp -d)"
echo 'int main(){return 0;}' > "$tsan_probe/t.cpp"
if c++ -fsanitize=thread "$tsan_probe/t.cpp" -o "$tsan_probe/t" 2>/dev/null; then
  echo "== thread-sanitizer smoke (STCG_SANITIZE=thread) =="
  tsan_dir="${build_dir}-tsan"
  cmake -S "$repo_root" -B "$tsan_dir" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DSTCG_SANITIZE=thread \
    ${STCG_CHECK_GENERATOR:+-G "$STCG_CHECK_GENERATOR"}
  cmake --build "$tsan_dir" -j "$(nproc)" --target stcg_tests
  "$tsan_dir/tests/stcg_tests" --gtest_filter='ThreadPool.*:ParallelGen.*'
else
  echo "== -fsanitize=thread unsupported by this toolchain; skipping TSAN =="
fi
rm -rf "$tsan_probe"

# The tape engine's perf contract is meaningless under sanitizers, so the
# bench smoke gates get their own small Release build: --quick fails
# (exit 1) if the tape engine is ever slower than the tree walk it
# replaced, or if the B=8 batched lanes fail to beat the scalar tape.
echo "== release bench smoke (bench_eval_tape / bench_batch_eval --quick) =="
bench_dir="${build_dir}-bench"
cmake -S "$repo_root" -B "$bench_dir" -DCMAKE_BUILD_TYPE=Release \
  ${STCG_CHECK_GENERATOR:+-G "$STCG_CHECK_GENERATOR"}
cmake --build "$bench_dir" -j "$(nproc)" \
  --target bench_eval_tape --target bench_batch_eval --target tape_audit
"$bench_dir/bench/bench_eval_tape" --quick
# The batch gate runs twice: once pinned to the portable scalar kernels
# and once at the best level the CPU dispatches to, so a vectorized-path
# regression can't hide behind the scalar fallback (or vice versa). Since
# the payload-row array planes landed, --quick also asserts B=8 *replay*
# beats the scalar simulator on the two array-bound models (CPUTask,
# LANSwitch) at both levels, so the array fast paths can't silently rot.
echo "== bench_batch_eval --quick (STCG_SIMD=scalar) =="
STCG_SIMD=scalar "$bench_dir/bench/bench_batch_eval" --quick
echo "== bench_batch_eval --quick (detected SIMD level) =="
"$bench_dir/bench/bench_batch_eval" --quick
# Quick tape-audit smoke in Release too: the producers' own debug-build
# verification is compiled out here, so the explicit sweep is the gate.
"$bench_dir/tools/tape_audit" --quick

# Kill-and-resume fuzz against the Release CLI: SIGKILL a checkpointed
# campaign at random points, resume until it completes, and require the
# exported suite to be byte-identical to an uninterrupted run; then a
# sweep of corrupt/truncated checkpoints that must all be rejected with
# a typed error (never a crash, never silent acceptance).
echo "== checkpoint kill/resume fuzz (tools/resume_fuzz.sh) =="
cmake --build "$bench_dir" -j "$(nproc)" --target stcg_cli
"$repo_root/tools/resume_fuzz.sh" "$bench_dir/tools/stcg_cli"

# JIT differential sweep in Release: the emitted C is compiled at -O2 and
# must stay bit-identical to the interpreter even when the host build is
# optimized. Containers without a C compiler skip (the library degrades
# to the interpreted tape there, which the main test stage already
# covers via the fallback tests).
if command -v "${STCG_JIT_CC:-cc}" >/dev/null 2>&1; then
  echo "== release JIT differential sweep (stcg_tests --gtest_filter='*Jit*') =="
  cmake --build "$bench_dir" -j "$(nproc)" --target stcg_tests
  "$bench_dir/tests/stcg_tests" --gtest_filter='*Jit*'
else
  echo "== no C compiler (\${STCG_JIT_CC:-cc}); skipping JIT sweep =="
fi

if command -v clang-tidy >/dev/null 2>&1; then
  echo "== clang-tidy (src/) =="
  find "$repo_root/src" -name '*.cpp' -print0 |
    xargs -0 -P "$(nproc)" -n 1 \
      clang-tidy -p "$build_dir" --quiet
else
  echo "== clang-tidy not installed; skipping static-analysis stage =="
fi

echo "== all checks passed =="
