#!/usr/bin/env bash
# CI-style gate: sanitizer + warnings-as-errors build, full test suite,
# and (when installed) clang-tidy over src/.
#
# Usage: tools/check.sh [build-dir]
#
# Exits non-zero on the first failing stage. clang-tidy is optional —
# containers without it skip that stage with a notice instead of failing.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-"$repo_root/build-check"}"

echo "== configure (STCG_SANITIZE=address,undefined STCG_WERROR=ON) =="
cmake -S "$repo_root" -B "$build_dir" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSTCG_SANITIZE=address,undefined \
  -DSTCG_WERROR=ON \
  -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
  ${STCG_CHECK_GENERATOR:+-G "$STCG_CHECK_GENERATOR"}

echo "== build =="
cmake --build "$build_dir" -j "$(nproc)"

echo "== test =="
ctest --test-dir "$build_dir" --output-on-failure

if command -v clang-tidy >/dev/null 2>&1; then
  echo "== clang-tidy (src/) =="
  find "$repo_root/src" -name '*.cpp' -print0 |
    xargs -0 -P "$(nproc)" -n 1 \
      clang-tidy -p "$build_dir" --quiet
else
  echo "== clang-tidy not installed; skipping static-analysis stage =="
fi

echo "== all checks passed =="
