// stcg_cli: command-line front end for the library.
//
//   stcg_cli --list
//   stcg_cli lint <model> [--json] [--no-reachability]
//   stcg_cli <model> [--tool stcg|sldv|simcotest] [--budget MS] [--seed N]
//            [--jobs N] [--engine tree|tape|jit]
//            [--solver box|local|portfolio] [--prune-dead]
//            [--export suite.txt] [--csv curve.csv] [--dot model.dot]
//            [--invariant] [--trace]
//
// <model> is one of the Table-II benchmark names (see --list).
//
// `lint` exit codes: 0 = no errors (warnings/notes allowed), 1 = errors
// found, 2 = usage or model-load failure.
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "analysis/reachability.h"
#include "baselines/simcotest_like.h"
#include "baselines/sldv_like.h"
#include "benchmodels/benchmodels.h"
#include "compile/compiler.h"
#include "lint/lint.h"
#include "model/export.h"
#include "model/serialize.h"
#include "sim/simulator.h"
#include "stcg/export.h"
#include "stcg/stcg_generator.h"

namespace {

using namespace stcg;

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --list\n"
      "       %s lint <model> [--json] [--no-reachability] [--tape]\n"
      "       %s <model> [--tool stcg|sldv|simcotest] [--budget MS]\n"
      "            [--seed N] [--jobs N] [--batch N] [--engine tree|tape|jit]\n"
      "            [--solver box|local|portfolio] [--max-rounds N]\n"
      "            [--checkpoint FILE] [--checkpoint-every N] [--resume]\n"
      "            [--prune-dead] [--export FILE] [--csv FILE] [--dot FILE]\n"
      "            [--save-model FILE] [--invariant] [--trace]\n"
      "  <model> is a benchmark name (--list) or an .stcgm file path\n"
      "  --jobs N runs the STCG solve loop on N lanes (0 = all cores);\n"
      "    results are identical for a fixed seed regardless of N\n"
      "  --batch N sets the lockstep tape lane width for replay expansion,\n"
      "    suite replay, and local-search scoring (default 8, 1 = scalar);\n"
      "    results are identical for a fixed seed regardless of N\n"
      "  --engine selects the simulation engine: tape (default), tree (the\n"
      "    semantic oracle) or jit (native code via the system C compiler;\n"
      "    falls back to tape with a warning when unavailable — see\n"
      "    STCG_JIT / STCG_JIT_CC / STCG_JIT_CACHE in the README); results\n"
      "    are bit-identical across engines\n"
      "  --checkpoint FILE saves the STCG campaign state to FILE every\n"
      "    --checkpoint-every N rounds (default 1, atomic tmp+rename);\n"
      "    --resume continues from FILE if it exists (fresh start with a\n"
      "    note otherwise); the resumed run is bit-identical to one that\n"
      "    was never interrupted\n"
      "  --max-rounds N stops after N campaign rounds (0 = unlimited), a\n"
      "    deterministic stop condition unlike the wall-clock --budget\n"
      "  lint exits 0 (clean), 1 (errors found) or 2 (bad usage/load)\n",
      argv0, argv0, argv0);
  return 2;
}

void traceSink(const std::string& line, void*) {
  std::printf("  %s\n", line.c_str());
}

/// Strict integer parse for numeric flags: the whole token must be a
/// decimal integer within [lo, hi]. Anything else — trailing junk
/// ("8x"), non-numeric text ("abc"), empty strings, out-of-range or
/// overflowing values ("-1" for a count, 20-digit numbers) — exits 2
/// with a diagnostic naming the flag. std::atoi's silent 0 / UB on
/// overflow is exactly what this replaces.
std::int64_t parseIntFlag(const std::string& flag, const char* text,
                          std::int64_t lo, std::int64_t hi) {
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE || v < lo || v > hi) {
    std::fprintf(stderr,
                 "invalid value for %s: '%s' (expected integer in "
                 "[%lld, %lld])\n",
                 flag.c_str(), text, static_cast<long long>(lo),
                 static_cast<long long>(hi));
    std::exit(2);
  }
  return v;
}

/// Resolve <model> as a benchmark name or an .stcgm file path; exits
/// with status 2 on failure.
model::Model loadModelArg(const std::string& modelName) {
  if (modelName.find('/') != std::string::npos ||
      modelName.find(".stcgm") != std::string::npos) {
    try {
      return model::loadModel(modelName);
    } catch (const model::SerializeError& e) {
      std::fprintf(stderr, "cannot load '%s': %s\n", modelName.c_str(),
                   e.what());
      std::exit(2);
    }
  }
  try {
    return bench::buildBenchModel(modelName);
  } catch (const std::out_of_range&) {
    std::fprintf(stderr, "unknown model '%s'; try --list\n",
                 modelName.c_str());
    std::exit(2);
  }
}

int runLint(int argc, char** argv) {
  if (argc < 3) return usage(argv[0]);
  bool wantJson = false;
  lint::LintOptions opt;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      wantJson = true;
    } else if (arg == "--no-reachability") {
      opt.reachabilityChecks = false;
    } else if (arg == "--tape") {
      opt.tapeChecks = true;
    } else {
      return usage(argv[0]);
    }
  }
  const model::Model m = loadModelArg(argv[2]);
  const lint::LintResult result = lint::lintModel(m, opt);
  if (wantJson) {
    std::printf("%s", result.sink.renderJson(m.name()).c_str());
  } else {
    std::printf("%s", result.sink.render().c_str());
    if (!result.compiledChecksRan) {
      std::printf("compiled-layer checks skipped (model has errors)\n");
    } else if (result.exclusions.count() > 0) {
      std::printf("%d coverage goal(s) provably unreachable\n",
                  result.exclusions.count());
    }
  }
  return result.sink.hasErrors() ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);

  if (std::strcmp(argv[1], "--list") == 0) {
    for (const auto& info : bench::allBenchModels()) {
      std::printf("%-12s %s (paper: %d branches, %d blocks)\n",
                  info.name.c_str(), info.functionality.c_str(),
                  info.paperBranches, info.paperBlocks);
    }
    return 0;
  }

  if (std::strcmp(argv[1], "lint") == 0) {
    return runLint(argc, argv);
  }

  const std::string modelName = argv[1];
  std::string tool = "stcg";
  std::string exportPath, csvPath, dotPath, saveModelPath;
  bool wantInvariant = false, wantTrace = false, wantResume = false;
  gen::GenOptions opt;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--tool") {
      tool = next();
    } else if (arg == "--budget") {
      opt.budgetMillis = parseIntFlag(arg, next(), 0, INT64_MAX);
    } else if (arg == "--seed") {
      opt.seed =
          static_cast<std::uint64_t>(parseIntFlag(arg, next(), 0, INT64_MAX));
    } else if (arg == "--jobs") {
      opt.jobs = static_cast<int>(parseIntFlag(arg, next(), 0, 4096));
    } else if (arg == "--batch") {
      opt.batch = static_cast<int>(parseIntFlag(arg, next(), 0, 4096));
    } else if (arg == "--engine") {
      const std::string s = next();
      if (s == "tape") {
        opt.simEngine = sim::EvalEngine::kTape;
      } else if (s == "tree") {
        opt.simEngine = sim::EvalEngine::kTree;
      } else if (s == "jit") {
        opt.simEngine = sim::EvalEngine::kJit;
      } else {
        std::fprintf(stderr,
                     "invalid value for --engine: '%s' (expected tree, tape "
                     "or jit)\n",
                     s.c_str());
        return 2;
      }
    } else if (arg == "--solver") {
      const std::string s = next();
      if (s == "box") {
        opt.solverKind = solver::SolverKind::kBox;
      } else if (s == "local") {
        opt.solverKind = solver::SolverKind::kLocalSearch;
      } else if (s == "portfolio") {
        opt.solverKind = solver::SolverKind::kPortfolio;
      } else {
        return usage(argv[0]);
      }
    } else if (arg == "--prune-dead") {
      opt.pruneProvablyDead = true;
    } else if (arg == "--checkpoint") {
      opt.checkpointPath = next();
    } else if (arg == "--checkpoint-every") {
      opt.checkpointEveryRounds =
          static_cast<int>(parseIntFlag(arg, next(), 1, 1'000'000));
    } else if (arg == "--resume") {
      wantResume = true;
    } else if (arg == "--max-rounds") {
      opt.maxRounds = static_cast<int>(parseIntFlag(arg, next(), 0, 1'000'000));
    } else if (arg == "--export") {
      exportPath = next();
    } else if (arg == "--csv") {
      csvPath = next();
    } else if (arg == "--dot") {
      dotPath = next();
    } else if (arg == "--save-model") {
      saveModelPath = next();
    } else if (arg == "--invariant") {
      wantInvariant = true;
    } else if (arg == "--trace") {
      wantTrace = true;
    } else {
      return usage(argv[0]);
    }
  }

  if (wantResume && opt.checkpointPath.empty()) {
    std::fprintf(stderr, "--resume requires --checkpoint FILE\n");
    return 2;
  }
  if (!opt.checkpointPath.empty() && tool != "stcg") {
    std::fprintf(stderr,
                 "--checkpoint/--resume only apply to --tool stcg (got "
                 "'%s')\n",
                 tool.c_str());
    return 2;
  }
  if (wantResume) {
    // Lenient at the CLI: resume when the checkpoint exists, otherwise
    // start fresh (so a kill-early/retry loop needs no state of its
    // own). The library call itself stays strict and throws on a
    // missing file.
    if (static_cast<bool>(std::ifstream(opt.checkpointPath))) {
      opt.resume = true;
    } else {
      std::printf("checkpoint '%s' not found; starting fresh\n",
                  opt.checkpointPath.c_str());
    }
  }

  model::Model m = loadModelArg(modelName);

  if (!saveModelPath.empty()) {
    if (model::saveModel(saveModelPath, m)) {
      std::printf("wrote %s\n", saveModelPath.c_str());
    }
  }
  if (!dotPath.empty()) {
    std::ofstream f(dotPath);
    f << model::toDot(m);
    std::printf("wrote %s\n", dotPath.c_str());
  }

  const auto cm = compile::compile(m);
  std::printf("%s: %zu branches, %d conditions, %zu states\n",
              cm.name.c_str(), cm.branches.size(), cm.conditionCount(),
              cm.states.size());
  std::printf("%s", model::modelStats(m).toString().c_str());

  if (opt.simEngine == sim::EvalEngine::kJit) {
    // Probe once so a toolchain failure is reported up front (the module
    // is memoized in-process, so the generator's simulators reuse it).
    const sim::Simulator probe(cm, sim::EvalEngine::kJit);
    if (probe.engine() != sim::EvalEngine::kJit) {
      std::printf("warning [jit-unavailable] %s; running on the interpreted "
                  "tape engine\n",
                  probe.jitFallbackReason().c_str());
    }
  }

  if (wantInvariant) {
    const auto inv = analysis::computeStateInvariant(cm);
    std::printf("%s", analysis::renderInvariant(cm, inv).c_str());
    const auto dead = analysis::findDeadBranches(cm);
    std::printf("provably dead branches: %zu\n", dead.deadBranches.size());
    for (const int b : dead.deadBranches) {
      const auto& br = cm.branches[static_cast<std::size_t>(b)];
      std::printf(
          "  %s : %s\n",
          cm.decisions[static_cast<std::size_t>(br.decision)].name.c_str(),
          br.label.c_str());
    }
  }

  gen::StcgGenerator stcg;
  if (wantTrace) stcg.setTrace(traceSink, nullptr);
  gen::SldvLikeGenerator sldv;
  gen::SimCoTestLikeGenerator simcotest;
  gen::Generator* g = nullptr;
  if (tool == "stcg") {
    g = &stcg;
  } else if (tool == "sldv") {
    g = &sldv;
  } else if (tool == "simcotest") {
    g = &simcotest;
  } else {
    return usage(argv[0]);
  }

  gen::GenResult res;
  try {
    res = g->generate(cm, opt);
  } catch (const expr::EvalError& e) {
    // Typed generation-time failure: bad options, or a missing/corrupt/
    // stale checkpoint under --resume.
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::printf(
      "\n%s: %zu tests | Decision %.1f%% | Condition %.1f%% | MCDC %.1f%%\n",
      res.toolName.c_str(), res.tests.size(), res.coverage.decision * 100,
      res.coverage.condition * 100, res.coverage.mcdc * 100);
  std::printf(
      "solver: %d calls (%d SAT / %d UNSAT / %d unknown), %d steps, "
      "%d tree nodes, %d goals pruned\n",
      res.stats.solveCalls, res.stats.solveSat, res.stats.solveUnsat,
      res.stats.solveUnknown, res.stats.stepsExecuted, res.stats.treeNodes,
      res.stats.goalsPruned);

  if (!exportPath.empty()) {
    if (gen::writeTestSuite(exportPath, cm, res.tests)) {
      std::printf("wrote %s\n", exportPath.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", exportPath.c_str());
      return 1;
    }
  }
  if (!csvPath.empty()) {
    std::ofstream f(csvPath);
    f << "time_sec,decision_coverage,origin\n";
    for (const auto& e : res.events) {
      f << e.timeSec << ',' << e.decisionCoverage << ','
        << (e.origin == gen::TestOrigin::kSolved ? "solved" : "random")
        << '\n';
    }
    std::printf("wrote %s\n", csvPath.c_str());
  }
  return 0;
}
